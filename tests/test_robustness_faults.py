"""Chaos suite: deterministic fault injection proves every fallback engages.

Covers the acceptance paths: (a) auction failure → lsa fallback, (b) ILP
blowup → greedy inter-column fallback, (c) stage failure → rollback to the
best-so-far placement, (d) budget exhaustion → degraded-but-legal result —
plus strict-mode re-raises and unit coverage of the guard/injector/health
primitives themselves.
"""

import re
from pathlib import Path

import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.placement.assignment import engine_chain
from repro.errors import (
    ReproError,
    SolverConvergenceError,
    SolverError,
    StageBudgetExceeded,
)
from repro.robustness import (
    EVERY_CALL,
    FaultInjector,
    RunHealth,
    SolverGuard,
    inject,
    maybe_fault,
)

CFG = dict(identification="oracle", mcf_iterations=4, seed=0)


def _place(small_dev, mini_accel, **over):
    placer = DSPlacer(small_dev, DSPlacerConfig(**{**CFG, **over}))
    return placer.place(mini_accel)


class TestAuctionFallback:
    """(a) auction non-convergence degrades to lsa instead of crashing."""

    def test_auction_failure_falls_back_to_lsa(self, small_dev, mini_accel):
        fi = FaultInjector().fail_on("assignment.auction", call=EVERY_CALL)
        with inject(fi):
            res = _place(small_dev, mini_accel, assignment_engine="auction")
        assert res.placement.is_legal()
        assert fi.calls("assignment.auction") >= 1
        assert fi.calls("assignment.lsa") >= 1  # the fallback actually ran
        fallbacks = [e for e in res.health.events if e.kind == "fallback"]
        assert any("auction → lsa" in e.detail for e in fallbacks)

    def test_chain_orders_are_deterministic(self):
        assert engine_chain("mcf") == ["mcf", "lsa", "auction"]
        assert engine_chain("auction") == ["auction", "lsa", "mcf"]
        assert engine_chain("lsa") == ["lsa", "mcf", "auction"]

    def test_real_auction_nonconvergence_is_typed(self):
        """The satellite bug: auction's failure must be catchable as SolverError."""
        import numpy as np

        from repro.solvers.auction import auction_assignment

        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SolverError):
            auction_assignment(cost, max_rounds=0)


class TestLegalizationFallback:
    """(b) inter-column ILP blowup degrades to the greedy packer."""

    def test_ilp_fault_falls_back_to_greedy(self, small_dev, mini_accel):
        fi = FaultInjector().fail_on("legalization.ilp", call=EVERY_CALL)
        with inject(fi):
            res = _place(small_dev, mini_accel)
        assert res.placement.is_legal()
        assert fi.calls("legalization.greedy") >= 1
        assert any(
            e.stage == "legalization" and e.kind == "fallback"
            for e in res.health.events
        )


class TestRollback:
    """(c) a failing stage rolls the run back to the best-so-far placement."""

    def test_incremental_failure_rolls_back(self, small_dev, mini_accel):
        fi = FaultInjector().fail_on("incremental", call=1)
        with inject(fi):
            res = _place(small_dev, mini_accel)
        assert res.placement.is_legal()
        assert res.health.degraded
        assert res.health.n_rollbacks >= 1

    def test_all_assignment_engines_down_still_returns_legal(
        self, small_dev, mini_accel
    ):
        fi = FaultInjector()
        for engine in ("mcf", "lsa", "auction"):
            fi.fail_on(f"assignment.{engine}", call=EVERY_CALL)
        with inject(fi):
            res = _place(small_dev, mini_accel)
        assert res.placement.is_legal()  # the prototype checkpoint survives
        assert res.health.degraded
        assert res.health.n_rollbacks >= 1

    def test_strict_mode_raises_instead(self, small_dev, mini_accel):
        fi = FaultInjector()
        for engine in ("mcf", "lsa", "auction"):
            fi.fail_on(f"assignment.{engine}", call=EVERY_CALL)
        with inject(fi):
            with pytest.raises(SolverError):
                _place(small_dev, mini_accel, strict=True)

    def test_strict_mode_raises_on_incremental_fault(self, small_dev, mini_accel):
        fi = FaultInjector().fail_on("incremental", call=1)
        with inject(fi):
            with pytest.raises(ReproError):
                _place(small_dev, mini_accel, strict=True)


class TestBudget:
    """(d) stage budget exhaustion truncates work but stays legal."""

    def test_stalled_assignment_degrades_legally(self, small_dev, mini_accel):
        fi = FaultInjector().stall_on("assignment.mcf", call=1, seconds=0.25)
        with inject(fi):
            res = _place(small_dev, mini_accel, stage_budget_s=0.05)
        assert res.placement.is_legal()
        assert res.health.degraded
        assert res.health.n_budget_hits >= 1

    def test_strict_budget_raises(self, small_dev, mini_accel):
        fi = FaultInjector().stall_on("assignment.mcf", call=1, seconds=0.25)
        with inject(fi):
            with pytest.raises(StageBudgetExceeded):
                _place(small_dev, mini_accel, stage_budget_s=0.05, strict=True)


class TestNoFaults:
    def test_clean_run_reports_healthy_events_only(self, small_dev, mini_accel):
        res = _place(small_dev, mini_accel)
        assert res.placement.is_legal()
        assert res.health.n_fallbacks == 0
        assert res.health.n_budget_hits == 0
        assert res.health.n_warnings == 0
        # a clean run may still pick the best-so-far iterate (rollback on a
        # natural HPWL regression), but nothing else may be logged
        assert all(e.kind == "rollback" for e in res.health.events)


class TestGuardUnit:
    def test_fallback_chain_records_and_returns_first_success(self):
        health = RunHealth()
        guard = SolverGuard("stage", health)

        def boom():
            raise SolverConvergenceError("nope")

        name, value = guard.run([("a", boom), ("b", lambda: 42)])
        assert (name, value) == ("b", 42)
        assert [e.kind for e in health.events] == ["failure", "fallback"]
        assert not health.degraded  # a successful fallback is not degradation

    def test_all_attempts_fail_raises_last(self):
        guard = SolverGuard("stage", RunHealth())
        with pytest.raises(SolverConvergenceError, match="second"):
            guard.run(
                [
                    ("a", lambda: (_ for _ in ()).throw(SolverConvergenceError("first"))),
                    ("b", lambda: (_ for _ in ()).throw(SolverConvergenceError("second"))),
                ]
            )

    @staticmethod
    def _clock_after(t0, later):
        """First call returns t0 (guard construction), then always `later`."""
        ticks = [t0]
        return lambda: ticks.pop(0) if ticks else later

    def test_budget_blocks_fallbacks(self):
        health = RunHealth()
        guard = SolverGuard(
            "stage", health, budget_s=1.0, clock=self._clock_after(0.0, 10.0)
        )

        def boom():
            raise SolverConvergenceError("nope")

        with pytest.raises(StageBudgetExceeded):
            guard.run([("a", boom), ("b", lambda: 42)])
        assert health.n_budget_hits == 1

    def test_check_budget_raises_when_exhausted(self):
        guard = SolverGuard(
            "stage", RunHealth(), budget_s=1.0, clock=self._clock_after(0.0, 5.0)
        )
        with pytest.raises(StageBudgetExceeded):
            guard.check_budget()


class TestInjectorUnit:
    def test_counts_and_nth_call(self):
        fi = FaultInjector().fail_on("s", call=2)
        with inject(fi):
            maybe_fault("s")  # call 1: fine
            with pytest.raises(SolverConvergenceError):
                maybe_fault("s")  # call 2: boom
            maybe_fault("s")  # call 3: fine again
        assert fi.calls("s") == 3
        assert fi.fired == [("s", 2)]

    def test_inactive_injector_is_noop(self):
        maybe_fault("whatever")  # must not raise outside inject()

    def test_injector_restores_previous(self):
        from repro.robustness import active_injector

        fi = FaultInjector()
        with inject(fi):
            assert active_injector() is fi
        assert active_injector() is None


class TestNoBareRaises:
    """Acceptance: zero bare ValueError/RuntimeError raises in solvers/ and
    core/placement/ — everything goes through the typed taxonomy."""

    def test_sources_are_fully_typed(self):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for sub in ("solvers", "core/placement"):
            for path in sorted((src / sub).rglob("*.py")):
                text = path.read_text()
                for m in re.finditer(r"raise (ValueError|RuntimeError)\b", text):
                    offenders.append(f"{path.name}: {m.group(0)}")
        assert not offenders, offenders
