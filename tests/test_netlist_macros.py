"""Unit tests for cascade macros."""

import pytest

from repro.netlist.macros import CascadeMacro


class TestCascadeMacro:
    def test_pairs_follow_chain_order(self):
        m = CascadeMacro(macro_id=0, dsps=(5, 7, 9))
        assert m.pairs() == [(5, 7), (7, 9)]

    def test_len(self):
        assert len(CascadeMacro(macro_id=0, dsps=(1, 2, 3, 4))) == 4

    def test_validate_short_chain(self):
        with pytest.raises(ValueError, match="fewer than 2"):
            CascadeMacro(macro_id=0, dsps=(1,)).validate()

    def test_validate_repeat(self):
        with pytest.raises(ValueError, match="repeats"):
            CascadeMacro(macro_id=0, dsps=(1, 2, 1)).validate()

    def test_validate_ok(self):
        CascadeMacro(macro_id=0, dsps=(1, 2)).validate()
