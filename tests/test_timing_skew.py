"""Cross-clock-region skew modeling."""

import dataclasses

import pytest

from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.timing import DelayModel, StaticTimingAnalyzer


@pytest.fixture()
def pair():
    nl = Netlist("skew")
    pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    a = nl.add_cell("ffa", CellType.FF)
    b = nl.add_cell("ffb", CellType.FF)
    nl.add_net("n0", pad, [a])
    nl.add_net("n1", a, [b])
    return nl, a, b


def _slack_of(report, cell):
    import numpy as np

    idx = int(np.flatnonzero(report.endpoint_cells == cell)[0])
    return float(report.endpoint_slack[idx])


class TestClockSkew:
    def test_cross_region_pays_skew(self, pair, small_dev):
        nl, a, b = pair
        dm = DelayModel()
        sta = StaticTimingAnalyzer(nl, dm)
        # same physical a→b distance, once within a clock region and once
        # across the (1, 2) region grid of the small device
        p_same = Placement(nl, small_dev)
        p_same.xy[a] = (100.0, 10.0)
        p_same.xy[b] = (100.0, 110.0)  # same region (bottom half)
        p_cross = Placement(nl, small_dev)
        p_cross.xy[a] = (100.0, small_dev.height / 2 - 50.0)
        p_cross.xy[b] = (100.0, small_dev.height / 2 + 50.0)  # crosses rows
        s_same = _slack_of(sta.analyze(p_same, period_ns=10.0), b)
        s_cross = _slack_of(sta.analyze(p_cross, period_ns=10.0), b)
        assert s_cross == pytest.approx(s_same - dm.clock_skew_per_region, abs=1e-9)

    def test_skew_disabled(self, pair, small_dev):
        nl, a, b = pair
        p = Placement(nl, small_dev)
        p.xy[a] = (100.0, small_dev.height / 2 - 50.0)
        p.xy[b] = (100.0, small_dev.height / 2 + 50.0)
        dm_off = dataclasses.replace(DelayModel(), clock_skew_per_region=0.0)
        s_off = _slack_of(StaticTimingAnalyzer(nl, dm_off).analyze(p, period_ns=10.0), b)
        s_on = _slack_of(StaticTimingAnalyzer(nl).analyze(p, period_ns=10.0), b)
        assert s_off > s_on

    def test_launch_region_propagates_through_logic(self, small_dev):
        """Skew is charged from the *launch register*, not the last comb cell."""
        nl = Netlist("prop")
        pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        a = nl.add_cell("ffa", CellType.FF)
        l = nl.add_cell("lut", CellType.LUT)
        b = nl.add_cell("ffb", CellType.FF)
        nl.add_net("n0", pad, [a])
        nl.add_net("n1", a, [l])
        nl.add_net("n2", l, [b])
        dm = DelayModel()
        sta = StaticTimingAnalyzer(nl, dm)
        p = Placement(nl, small_dev)
        # launch in bottom region, LUT and capture together in top region
        p.xy[a] = (100.0, 10.0)
        p.xy[l] = (100.0, small_dev.height - 30.0)
        p.xy[b] = (100.0, small_dev.height - 20.0)
        rep = sta.analyze(p, period_ns=10.0, with_slacks=True)
        manual = (
            dm.clk_to_q[CellType.FF]
            + dm.net_delay(abs(p.xy[l][1] - p.xy[a][1]))
            + dm.prop[CellType.LUT]
            + dm.net_delay(10.0)
            + dm.clock_skew_per_region  # one region row apart
        )
        assert rep.wns_ns == pytest.approx(10.0 - dm.setup[CellType.FF] - manual, abs=1e-9)
        # required-time pass carries the same skew
        import numpy as np

        assert np.nanmin(rep.cell_output_slack) == pytest.approx(rep.wns_ns, abs=1e-9)
