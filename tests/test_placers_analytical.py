"""Quadratic global placement tests."""

import numpy as np
import pytest

from repro.placers import GlobalPlaceConfig, Placement, QuadraticGlobalPlacer
from repro.placers.analytical import _equalize, _push_out_of_ps


class TestEqualize:
    def test_uniform_unchanged_roughly(self, rng):
        x = rng.uniform(0, 100, 2000)
        out = _equalize(x, np.ones_like(x), 0, 100, 20)
        assert abs(out.mean() - 50) < 5

    def test_clustered_spread_out(self, rng):
        x = rng.normal(50, 2, 2000).clip(0, 100)
        out = _equalize(x, np.ones_like(x), 0, 100, 20)
        assert out.std() > x.std() * 2

    def test_monotone_mapping(self, rng):
        x = np.sort(rng.uniform(0, 100, 200))
        out = _equalize(x, np.ones_like(x), 0, 100, 16)
        assert np.all(np.diff(out) >= -1e-9)

    def test_empty(self):
        out = _equalize(np.array([]), np.array([]), 0, 1, 4)
        assert out.size == 0


class TestPushOutOfPS:
    def test_inside_points_moved_out(self, small_dev):
        ps = small_dev.ps
        pts = np.array([[ps.x0 + 1.0, ps.y0 + 1.0], [ps.x1 - 1.0, ps.y1 - 1.0]])
        out = _push_out_of_ps(pts, small_dev)
        for x, y in out:
            assert not ps.contains(x, y)

    def test_outside_points_untouched(self, small_dev):
        pts = np.array([[small_dev.width - 1.0, small_dev.height - 1.0]])
        out = _push_out_of_ps(pts, small_dev)
        assert np.array_equal(out, pts)


class TestGlobalPlacer:
    def test_connected_cells_near_fixed_anchor(self, tiny_netlist, small_dev):
        placer = QuadraticGlobalPlacer(GlobalPlaceConfig(n_iterations=2))
        place = placer.place(tiny_netlist, small_dev)
        # lut0 is driven by the PS; it should sit closer to the PS than the
        # far IO pad on average
        lut0 = tiny_netlist.cell_by_name("lut0").index
        ps_xy = np.array(tiny_netlist.cell_by_name("ps").fixed_xy)
        io_xy = np.array(tiny_netlist.cell_by_name("pad").fixed_xy)
        d_ps = np.abs(place.xy[lut0] - ps_xy).sum()
        d_io = np.abs(place.xy[lut0] - io_xy).sum()
        assert d_ps < d_io

    def test_coordinates_inside_fabric(self, mini_accel, small_dev):
        place = QuadraticGlobalPlacer(GlobalPlaceConfig(n_iterations=2)).place(
            mini_accel, small_dev
        )
        mov = mini_accel.movable_indices()
        assert np.all(place.xy[mov, 0] >= 0) and np.all(place.xy[mov, 0] <= small_dev.width)
        assert np.all(place.xy[mov, 1] >= 0) and np.all(place.xy[mov, 1] <= small_dev.height)

    def test_ps_keepout_respected(self, mini_accel, small_dev):
        place = QuadraticGlobalPlacer(GlobalPlaceConfig(n_iterations=2, avoid_ps=True)).place(
            mini_accel, small_dev
        )
        ps = small_dev.ps
        for i in mini_accel.movable_indices():
            assert not ps.contains(place.xy[i, 0], place.xy[i, 1])

    def test_movable_mask_freezes_cells(self, mini_accel, small_dev):
        base = Placement(mini_accel, small_dev)
        frozen = mini_accel.dsp_indices()
        base.xy[frozen] = (123.0, 321.0)
        mask = np.array([not c.is_fixed for c in mini_accel.cells])
        mask[frozen] = False
        place = QuadraticGlobalPlacer(GlobalPlaceConfig(n_iterations=1)).place(
            mini_accel, small_dev, placement=base, movable_mask=mask
        )
        for i in frozen:
            assert tuple(place.xy[i]) == (123.0, 321.0)

    def test_spreading_reduces_overlap(self, mini_accel, small_dev):
        cfg0 = GlobalPlaceConfig(n_iterations=0)
        cfg4 = GlobalPlaceConfig(n_iterations=4)
        p0 = QuadraticGlobalPlacer(cfg0).place(mini_accel, small_dev)
        p4 = QuadraticGlobalPlacer(cfg4).place(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        # spread std should grow with iterations
        assert p4.xy[mov, 0].std() >= p0.xy[mov, 0].std() * 0.9

    def test_fabric_scale_overshoots(self, mini_accel, small_dev):
        cfg = GlobalPlaceConfig(n_iterations=2, fabric_scale=1.5, avoid_ps=False)
        place = QuadraticGlobalPlacer(cfg).place(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        # with a 1.5x virtual fabric some cells land beyond the real device
        assert place.xy[mov, 0].max() > small_dev.width
