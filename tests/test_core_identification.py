"""Datapath identifier tests (oracle / heuristic / SVM / GCN wiring)."""

import numpy as np
import pytest

from repro.core.extraction import DatapathIdentifier, build_graph_sample
from repro.core.extraction.identification import _two_means_split


class TestBuildGraphSample:
    def test_mask_is_dsps(self, mini_accel):
        s = build_graph_sample(mini_accel)
        dsps = set(mini_accel.dsp_indices())
        assert set(np.flatnonzero(s.mask)) == dsps

    def test_labels_match_ground_truth(self, mini_accel):
        s = build_graph_sample(mini_accel)
        for i in mini_accel.dsp_indices():
            assert s.labels[i] == (1 if mini_accel.cells[i].is_datapath else 0)

    def test_features_reused(self, mini_accel):
        x = np.zeros((len(mini_accel.cells), 7))
        s = build_graph_sample(mini_accel, features=x)
        assert s.x is x


class TestTwoMeansSplit:
    def test_separates_clusters(self):
        v = np.array([1.0, 2.0, 1.5, 10.0, 11.0])
        thr = _two_means_split(v)
        assert 2.0 < thr < 10.0

    def test_degenerate_all_equal(self):
        thr = _two_means_split(np.array([3.0, 3.0]))
        assert thr > 3.0  # everything classified low-count (datapath)


class TestIdentifiers:
    def test_oracle_exact(self, mini_accel):
        res = DatapathIdentifier(method="oracle").predict(mini_accel)
        assert res.accuracy == 1.0
        for i, flag in res.flags.items():
            assert flag == bool(mini_accel.cells[i].is_datapath)

    def test_heuristic_reasonable(self, mini_accel):
        res = DatapathIdentifier(method="heuristic").predict(mini_accel)
        assert res.accuracy >= 0.7

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            DatapathIdentifier(method="kmeans")

    def test_gcn_requires_fit(self, mini_accel):
        ident = DatapathIdentifier(method="gcn")
        with pytest.raises(RuntimeError, match="fit"):
            ident.predict(mini_accel, sample=build_graph_sample(mini_accel))

    def test_svm_requires_fit(self, mini_accel):
        ident = DatapathIdentifier(method="svm")
        with pytest.raises(RuntimeError, match="fit"):
            ident.predict(mini_accel, sample=build_graph_sample(mini_accel))

    def test_svm_fit_predict(self, mini_accel):
        s = build_graph_sample(mini_accel)
        ident = DatapathIdentifier(method="svm", epochs=100).fit([s])
        res = ident.predict(mini_accel, sample=s)
        assert res.method == "svm"
        assert 0.0 <= res.accuracy <= 1.0
        assert res.n_datapath > 0

    def test_gcn_fit_predict_same_graph(self, mini_accel):
        s = build_graph_sample(mini_accel)
        ident = DatapathIdentifier(method="gcn", epochs=40).fit([s])
        res = ident.predict(mini_accel, sample=s)
        assert res.accuracy >= 0.8  # trained on itself; should be high
