"""Systolic-array generator tests."""

import pytest

from repro.accelgen import SystolicConfig, generate_systolic
from repro.netlist import CellType


@pytest.fixture(scope="module")
def systolic():
    cfg = SystolicConfig(
        name="sys4x3", rows=4, cols=3, max_chain=4, n_lut=600, n_ff=800, n_lutram=40, n_bram=8
    )
    return cfg, generate_systolic(cfg)


class TestSystolicStructure:
    def test_validates(self, systolic):
        _, nl = systolic
        nl.validate()

    def test_dsp_count(self, systolic):
        cfg, nl = systolic
        assert nl.stats().n_dsp == cfg.total_dsps

    def test_resource_totals(self, systolic):
        cfg, nl = systolic
        st = nl.stats()
        assert st.n_lut == cfg.n_lut
        assert st.n_ff == cfg.n_ff
        assert st.n_lutram == cfg.n_lutram
        assert st.n_bram == cfg.n_bram

    def test_column_cascades(self, systolic):
        cfg, nl = systolic
        # rows=4, max_chain=4: one macro per column
        pe_macros = [m for m in nl.macros if nl.cells[m.dsps[0]].attrs.get("role") == "pe_dsp"]
        assert len(pe_macros) == cfg.cols
        for m in pe_macros:
            assert len(m) == cfg.rows

    def test_long_columns_segmented(self):
        cfg = SystolicConfig(name="tall", rows=10, cols=2, max_chain=4,
                             n_lut=400, n_ff=600, n_lutram=30, n_bram=8)
        nl = generate_systolic(cfg)
        pe_macros = [m for m in nl.macros if nl.cells[m.dsps[0]].attrs.get("role") == "pe_dsp"]
        assert all(len(m) <= 4 for m in pe_macros)
        assert sum(len(m) for m in pe_macros) == 10 * 2

    def test_labels(self, systolic):
        _, nl = systolic
        roles = {c.attrs.get("role") for c in nl.cells if c.ctype.is_dsp}
        assert "pe_dsp" in roles and "ctrl_dsp" in roles
        for c in nl.cells:
            if c.ctype.is_dsp:
                assert c.is_datapath is (c.attrs["role"] == "pe_dsp")

    def test_bad_config(self):
        with pytest.raises(ValueError):
            SystolicConfig(name="x", rows=1, cols=1)
        with pytest.raises(ValueError):
            SystolicConfig(name="x", rows=4, cols=4, max_chain=1)


class TestSystolicFlow:
    def test_dsplacer_places_it(self, systolic, small_dev):
        from repro.core import DSPlacer, DSPlacerConfig

        _, nl = systolic
        res = DSPlacer(
            small_dev, DSPlacerConfig(identification="oracle", mcf_iterations=4)
        ).place(nl)
        assert res.placement.is_legal()

    def test_timing_analyzable(self, systolic, small_dev):
        from repro.placers import VivadoLikePlacer
        from repro.timing import StaticTimingAnalyzer

        _, nl = systolic
        p = VivadoLikePlacer(seed=0, device=small_dev).place(nl)
        sta = StaticTimingAnalyzer(nl)
        assert not sta.has_comb_cycles
        rep = sta.analyze(p)
        assert rep.n_endpoints > 50
