"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import SCHEMA_VERSION, RunReport, validate_report


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place"])
        assert args.tool == "dsplacer"
        assert args.scale == 0.1

    def test_bad_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "--suite", "resnet"])


class TestCommands:
    def test_generate_writes_json(self, tmp_path, capsys):
        out = tmp_path / "n.json"
        rc = main(["generate", "--suite", "ismartdnn", "--scale", "0.02", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["name"] == "iSmartDNN@0.02"
        assert len(doc["cells"]) > 100

    def test_place_vivado(self, capsys):
        rc = main(["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "vivado"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legal=True" in out
        assert "fmax=" in out

    def test_place_dsplacer_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "x.svg"
        rc = main(
            [
                "place",
                "--suite",
                "ismartdnn",
                "--scale",
                "0.02",
                "--tool",
                "dsplacer",
                "--svg",
                str(svg),
            ]
        )
        assert rc == 0
        assert svg.exists()
        assert "legal=True" in capsys.readouterr().out

    def test_report_prints_paths(self, capsys):
        rc = main(["report", "--suite", "ismartdnn", "--scale", "0.02", "--paths", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "path 1" in out

    def test_experiment_table1_hint(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 1  # points at the benchmark harness


PLACE_SMALL = ["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "dsplacer"]


class TestObservabilityOutput:
    def test_json_emits_valid_runreport_on_stdout(self, capsys):
        rc = main(PLACE_SMALL + ["--json"])
        assert rc == 0
        out, err = capsys.readouterr()
        doc = json.loads(out)  # stdout is pure JSON
        assert validate_report(doc) == []
        assert doc["meta"]["tool"] == "dsplacer"
        rep = RunReport.from_dict(doc)
        assert {"run", "place", "route", "sta.analyze"} <= rep.span_names()
        assert len(rep.metric_names()) >= 10
        # the human summary moved to stderr
        assert "legal=True" in err

    def test_quiet_silences_health_summary(self, capsys):
        rc = main(PLACE_SMALL + ["--json", "--quiet"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert validate_report(json.loads(out)) == []
        assert err.strip() == ""

    def test_trace_prints_span_tree(self, capsys):
        rc = main(PLACE_SMALL + ["--trace", "--quiet"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "run" in err and "place" in err and "wall" in err
        assert "legal=True" in out  # summary stays on stdout without --json

    def test_without_flags_no_report_and_no_overheads(self, capsys):
        rc = main(PLACE_SMALL)
        assert rc == 0
        out, _ = capsys.readouterr()
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)  # plain text, not a report


class TestConfigFile:
    def test_config_file_overrides_flags(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"seed": 9, "outer_iterations": 1}))
        rc = main(PLACE_SMALL + ["--json", "--quiet", "--config", str(cfg)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["config"]["seed"] == 9
        assert doc["meta"]["config"]["outer_iterations"] == 1

    def test_unknown_config_key_exits_2(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"turbo": True}))
        rc = main(PLACE_SMALL + ["--config", str(cfg)])
        assert rc == 2
        assert "ConfigurationError" in capsys.readouterr().err

    def test_missing_config_file_exits_2(self, capsys):
        rc = main(PLACE_SMALL + ["--config", "/nonexistent/cfg.json"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err


SERVE_SMALL = [
    "serve", "submit", "--suite", "ismartdnn", "--scale", "0.02", "--workers", "2",
]


class TestServeSubcommand:
    def test_submit_runs_and_reports(self, tmp_path, capsys):
        report_dir = tmp_path / "reports"
        rc = main(SERVE_SMALL + ["--report-dir", str(report_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "job-0001" in out and "status=ok" in out and "cache=miss" in out
        reports = list(report_dir.glob("*.json"))
        assert len(reports) == 1
        doc = json.loads(reports[0].read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert validate_report(doc) == []
        assert doc["job"]["id"] == "job-0001"

    def test_duplicate_suite_hits_cache(self, capsys):
        rc = main(SERVE_SMALL + ["--suite", "ismartdnn", "--json", "--quiet"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        caches = [j["cache"] for j in doc["jobs"]]
        assert sorted(caches) == ["hit", "miss"]
        assert all(j["status"] == "ok" for j in doc["jobs"])

    def test_place_and_serve_share_request_flags(self):
        place_args = build_parser().parse_args(
            ["place", "--race-k", "3", "--race-policy", "first", "--no-cache"]
        )
        serve_args = build_parser().parse_args(
            ["serve", "submit", "--race-k", "3", "--race-policy", "first", "--no-cache"]
        )
        from repro.placers.api import PlacementRequest

        place_req = PlacementRequest.from_args(place_args)
        serve_args.suite = serve_args.suite or ["skynet"]
        serve_args.suite = serve_args.suite[0]
        serve_req = PlacementRequest.from_args(serve_args)
        assert place_req == serve_req
        assert place_req.race_k == 3 and not place_req.use_cache

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestPlaceRacing:
    def test_place_race_k_uses_the_pool(self, capsys):
        rc = main(PLACE_SMALL + ["--race-k", "2", "--json", "--quiet"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_report(doc) == []
        assert doc["job"]["race"]["k"] == 2
        assert doc["quality"]["legal"] is True


class TestBenchSubcommand:
    def test_bench_passthrough_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--", "--help"])
        assert exc.value.code == 0
        assert "--update" in capsys.readouterr().out


class TestFlatFlagShim:
    def test_flat_flags_still_place_with_warning(self, capsys):
        rc = main(["--suite", "ismartdnn", "--scale", "0.02", "--tool", "vivado"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "legal=True" in out
        assert "deprecated" in err

    def test_subcommand_form_emits_no_warning(self, capsys):
        rc = main(["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "vivado"])
        assert rc == 0
        assert "deprecated" not in capsys.readouterr().err
