"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place"])
        assert args.tool == "dsplacer"
        assert args.scale == 0.1

    def test_bad_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "--suite", "resnet"])


class TestCommands:
    def test_generate_writes_json(self, tmp_path, capsys):
        out = tmp_path / "n.json"
        rc = main(["generate", "--suite", "ismartdnn", "--scale", "0.02", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["name"] == "iSmartDNN@0.02"
        assert len(doc["cells"]) > 100

    def test_place_vivado(self, capsys):
        rc = main(["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "vivado"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legal=True" in out
        assert "fmax=" in out

    def test_place_dsplacer_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "x.svg"
        rc = main(
            [
                "place",
                "--suite",
                "ismartdnn",
                "--scale",
                "0.02",
                "--tool",
                "dsplacer",
                "--svg",
                str(svg),
            ]
        )
        assert rc == 0
        assert svg.exists()
        assert "legal=True" in capsys.readouterr().out

    def test_report_prints_paths(self, capsys):
        rc = main(["report", "--suite", "ismartdnn", "--scale", "0.02", "--paths", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "path 1" in out

    def test_experiment_table1_hint(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 1  # points at the benchmark harness
