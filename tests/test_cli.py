"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import RunReport, validate_report


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place"])
        assert args.tool == "dsplacer"
        assert args.scale == 0.1

    def test_bad_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "--suite", "resnet"])


class TestCommands:
    def test_generate_writes_json(self, tmp_path, capsys):
        out = tmp_path / "n.json"
        rc = main(["generate", "--suite", "ismartdnn", "--scale", "0.02", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["name"] == "iSmartDNN@0.02"
        assert len(doc["cells"]) > 100

    def test_place_vivado(self, capsys):
        rc = main(["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "vivado"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legal=True" in out
        assert "fmax=" in out

    def test_place_dsplacer_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "x.svg"
        rc = main(
            [
                "place",
                "--suite",
                "ismartdnn",
                "--scale",
                "0.02",
                "--tool",
                "dsplacer",
                "--svg",
                str(svg),
            ]
        )
        assert rc == 0
        assert svg.exists()
        assert "legal=True" in capsys.readouterr().out

    def test_report_prints_paths(self, capsys):
        rc = main(["report", "--suite", "ismartdnn", "--scale", "0.02", "--paths", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "path 1" in out

    def test_experiment_table1_hint(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 1  # points at the benchmark harness


PLACE_SMALL = ["place", "--suite", "ismartdnn", "--scale", "0.02", "--tool", "dsplacer"]


class TestObservabilityOutput:
    def test_json_emits_valid_runreport_on_stdout(self, capsys):
        rc = main(PLACE_SMALL + ["--json"])
        assert rc == 0
        out, err = capsys.readouterr()
        doc = json.loads(out)  # stdout is pure JSON
        assert validate_report(doc) == []
        assert doc["meta"]["tool"] == "dsplacer"
        rep = RunReport.from_dict(doc)
        assert {"run", "place", "route", "sta.analyze"} <= rep.span_names()
        assert len(rep.metric_names()) >= 10
        # the human summary moved to stderr
        assert "legal=True" in err

    def test_quiet_silences_health_summary(self, capsys):
        rc = main(PLACE_SMALL + ["--json", "--quiet"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert validate_report(json.loads(out)) == []
        assert err.strip() == ""

    def test_trace_prints_span_tree(self, capsys):
        rc = main(PLACE_SMALL + ["--trace", "--quiet"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "run" in err and "place" in err and "wall" in err
        assert "legal=True" in out  # summary stays on stdout without --json

    def test_without_flags_no_report_and_no_overheads(self, capsys):
        rc = main(PLACE_SMALL)
        assert rc == 0
        out, _ = capsys.readouterr()
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)  # plain text, not a report


class TestConfigFile:
    def test_config_file_overrides_flags(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"seed": 9, "outer_iterations": 1}))
        rc = main(PLACE_SMALL + ["--json", "--quiet", "--config", str(cfg)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["config"]["seed"] == 9
        assert doc["meta"]["config"]["outer_iterations"] == 1

    def test_unknown_config_key_exits_2(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"turbo": True}))
        rc = main(PLACE_SMALL + ["--config", str(cfg)])
        assert rc == 2
        assert "ConfigurationError" in capsys.readouterr().err

    def test_missing_config_file_exits_2(self, capsys):
        rc = main(PLACE_SMALL + ["--config", "/nonexistent/cfg.json"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
