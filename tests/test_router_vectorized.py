"""Vectorized-vs-reference pattern-router equivalence + candidate dedupe.

Both negotiation engines implement the same frozen-round semantics (see the
``pattern_router`` module docstring); the batched one must reproduce the
per-connection loop oracle to 1e-9 on every ``RoutingResult`` field across
random placements, grid sizes, fanouts, and congestion levels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import small_device
from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.router.pattern_router import PatternRouter, candidate_paths

DEV = small_device(n_dsp_cols=3, dsp_rows=12)


@st.composite
def router_case(draw):
    """Random placement + router knobs, biased toward congestion."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n_cells = draw(st.integers(2, 30))
    nl = Netlist("r")
    for i in range(n_cells):
        nl.add_cell(f"c{i}", CellType.FF)
    n_nets = draw(st.integers(1, 2 * n_cells))
    for k in range(n_nets):
        driver = int(rng.integers(0, n_cells))
        fanout = int(rng.integers(1, 5))
        sinks = [int(s) for s in rng.integers(0, n_cells, fanout) if int(s) != driver]
        if not sinks:
            continue
        nl.add_net(f"n{k}", driver, sinks)
    place = Placement(nl, DEV)
    place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (n_cells, 2))
    grid = draw(st.sampled_from([(4, 4), (6, 9), (8, 8), (12, 5)]))
    capacity = draw(st.sampled_from([0.5, 1.0, 2.0, 50.0]))
    n_rounds = draw(st.integers(1, 4))
    return place, grid, capacity, n_rounds


class TestVectorizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(router_case())
    def test_matches_reference(self, case):
        place, grid, capacity, n_rounds = case
        kw = dict(grid=grid, capacity_per_edge=capacity, n_rounds=n_rounds)
        a = PatternRouter(method="reference", **kw).route(place)
        b = PatternRouter(method="vectorized", **kw).route(place)
        np.testing.assert_allclose(a.net_detour, b.net_detour, rtol=0, atol=1e-9)
        np.testing.assert_allclose(a.net_routed_len, b.net_routed_len, rtol=0, atol=1e-9)
        np.testing.assert_allclose(a.congestion, b.congestion, rtol=0, atol=1e-9)
        assert a.total_wirelength == pytest.approx(b.total_wirelength, abs=1e-6)
        assert a.overflow_frac == pytest.approx(b.overflow_frac, abs=1e-12)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            PatternRouter(method="banana")


class TestCandidateDedupe:
    """Regression: straight connections used to emit both L patterns as the
    identical path, so it was cost-evaluated twice per connection per round."""

    def test_straight_horizontal_single_candidate(self):
        paths = candidate_paths(1, 3, 5, 3)
        assert len(paths) == 1
        assert paths[0] == [("h", x, 3) for x in range(1, 5)]

    def test_straight_vertical_single_candidate(self):
        paths = candidate_paths(2, 6, 2, 1)
        assert len(paths) == 1
        assert paths[0] == [("v", 2, y) for y in range(1, 6)]

    def test_same_bin_single_empty_path(self):
        assert candidate_paths(4, 4, 4, 4) == [[]]

    def test_diagonal_candidates_distinct(self):
        paths = candidate_paths(0, 0, 3, 4)
        assert len(paths) == 4
        as_sets = [frozenset(p) for p in paths]
        assert len(set(as_sets)) == 4
        for p in paths:  # every pattern crosses |dx| h- and |dy| v-edges
            kinds = [k for k, _, _ in p]
            assert kinds.count("h") == 3
            assert kinds.count("v") == 4

    def test_short_legs_skip_z_patterns(self):
        # |dx| == 1: no Z with a horizontal middle leg exists
        paths = candidate_paths(0, 0, 1, 5)
        assert len(paths) == 3

    def test_unit_diagonal_two_candidates(self):
        assert len(candidate_paths(0, 0, 1, 1)) == 2
