"""Equivalence properties pinning the vectorized extraction kernels.

Every compiled/batched kernel must agree with its pure-Python reference:

- level-synchronous Brandes betweenness vs ``nx.betweenness_centrality``
  (exact, to 1e-9, on directed / disconnected / self-loop graphs),
- the kernel feature backend vs the networkx backend (exact branch),
- SCC feedback flags vs ``nx.strongly_connected_components``,
- batched BFS DSP paths vs the pure-Python IDDFS reference under jittered
  ``max_fanout`` / ``max_depth``,
- the sampled-closeness pivot fix (regression for the off-by-one bias).
"""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extraction import FeatureConfig, betweenness_csr, extract_node_features
from repro.core.extraction.features import _sampled_closeness
from repro.core.extraction.iddfs import iddfs_dsp_paths
from repro.netlist import CellType, Netlist


# ----------------------------------------------------------------------
# random-structure strategies
# ----------------------------------------------------------------------

@st.composite
def adjacency(draw, directed: bool):
    """Random sparse adjacency incl. disconnected parts and self-loops."""
    n = draw(st.integers(min_value=2, max_value=24))
    n_edges = draw(st.integers(min_value=0, max_value=3 * n))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    a = np.zeros((n, n))
    for u, v in pairs:
        a[u, v] = 1.0
    if not directed:
        a = np.maximum(a, a.T)
    return sp.csr_matrix(a)


@st.composite
def random_netlist(draw, max_cells: int = 18, dsp_every: int = 3):
    """Small random netlist with DSP/FF/LUT mix and varied-fanout nets."""
    n = draw(st.integers(min_value=2, max_value=max_cells))
    nl = Netlist("hyp")
    for i in range(n):
        if i % dsp_every == 0:
            ctype = CellType.DSP
        elif i % dsp_every == 1:
            ctype = CellType.FF
        else:
            ctype = CellType.LUT
        nl.add_cell(f"c{i}", ctype)
    n_nets = draw(st.integers(min_value=1, max_value=2 * n))
    for j in range(n_nets):
        driver = draw(st.integers(min_value=0, max_value=n - 1))
        sinks = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1).filter(lambda s: s != driver),
                min_size=1,
                max_size=min(n - 1, 6),
                unique=True,
            )
        )
        if sinks:
            nl.add_net(f"n{j}", driver, sinks)
    return nl


# ----------------------------------------------------------------------
# Brandes betweenness vs networkx
# ----------------------------------------------------------------------

class TestBetweennessKernel:
    @settings(max_examples=60, deadline=None)
    @given(adjacency(directed=False), st.booleans())
    def test_undirected_matches_networkx(self, a, normalized):
        g = nx.from_scipy_sparse_array(a, create_using=nx.Graph)
        ref = nx.betweenness_centrality(g, normalized=normalized)
        got = betweenness_csr(a, normalized=normalized, directed=False, block_size=5)
        np.testing.assert_allclose(got, [ref[i] for i in range(a.shape[0])], atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(adjacency(directed=True), st.booleans())
    def test_directed_matches_networkx(self, a, normalized):
        g = nx.from_scipy_sparse_array(a, create_using=nx.DiGraph)
        ref = nx.betweenness_centrality(g, normalized=normalized)
        got = betweenness_csr(a, normalized=normalized, directed=True, block_size=5)
        np.testing.assert_allclose(got, [ref[i] for i in range(a.shape[0])], atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(adjacency(directed=False))
    def test_full_pivot_sampling_matches_networkx(self, a):
        """sources=all-nodes must reproduce nx's k=n sampled rescale."""
        n = a.shape[0]
        g = nx.from_scipy_sparse_array(a, create_using=nx.Graph)
        ref = nx.betweenness_centrality(g, k=n, normalized=True, seed=0)
        got = betweenness_csr(a, sources=np.arange(n), normalized=True, block_size=5)
        np.testing.assert_allclose(got, [ref[i] for i in range(n)], atol=1e-9)

    def test_self_loop_is_inert(self):
        a = np.zeros((4, 4))
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            a[u, v] = a[v, u] = 1.0
        plain = betweenness_csr(sp.csr_matrix(a))
        np.fill_diagonal(a, 1.0)
        looped = betweenness_csr(sp.csr_matrix(a))
        np.testing.assert_allclose(plain, looped, atol=1e-12)


# ----------------------------------------------------------------------
# feature backends
# ----------------------------------------------------------------------

class TestFeatureBackendEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_netlist())
    def test_exact_branch_matches_networkx(self, nl):
        kern = extract_node_features(nl, FeatureConfig(backend="kernels"))
        ref = extract_node_features(nl, FeatureConfig(backend="networkx"))
        np.testing.assert_allclose(kern, ref, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(random_netlist())
    def test_scc_flags_match_networkx(self, nl):
        feats = extract_node_features(nl, FeatureConfig(backend="kernels"))
        g = nx.DiGraph()
        g.add_nodes_from(range(len(nl)))
        for net in nl.nets:
            for s in net.sinks:
                g.add_edge(net.driver, s)
        expect = np.zeros(len(nl))
        for comp in nx.strongly_connected_components(g):
            if len(comp) > 1:
                for u in comp:
                    expect[u] = 1.0
        np.testing.assert_array_equal(feats[:, 1], expect)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            FeatureConfig(backend="cuda")


class TestSampledClosenessBias:
    def test_non_pivot_rows_not_discounted(self):
        """Regression for the off-by-one: with pivots ≠ all nodes, a
        non-pivot node's closeness counts every reachable pivot; only pivot
        rows subtract their own zero self-distance."""
        # star: hub 0 at distance 1 from every leaf; pivots = two leaves
        dist = np.array(
            [
                [0.0, 2.0, 2.0, 1.0],  # from pivot 1... rows are pivots
                [2.0, 0.0, 2.0, 1.0],
            ]
        )
        pivots = np.array([0, 1])
        got = _sampled_closeness(dist, pivots, n=4, k=2)
        # node 3 (the hub, not a pivot): 2 reachable pivots / Σd=2 → 1.0
        assert got[3] == pytest.approx(2.0 / 2.0 * (2 / 2))
        # node 0 (a pivot): 1 other pivot / Σd=2 → 0.5
        assert got[0] == pytest.approx(1.0 / 2.0 * (2 / 2))
        # node 2 (non-pivot leaf): 2 pivots at distance 2 each → 2/4
        assert got[2] == pytest.approx(2.0 / 4.0 * (2 / 2))

    def test_sampled_branch_uses_fix(self):
        """End-to-end: every-node-reachable graph, non-pivot nodes must not
        lose one pivot from the numerator."""
        nl = Netlist("ring")
        n = 12
        cells = [nl.add_cell(f"c{i}", CellType.LUT) for i in range(n)]
        for i in range(n):
            nl.add_net(f"e{i}", cells[i], [cells[(i + 1) % n]])
        k = 4
        cfg = FeatureConfig(exact_threshold=1, n_pivots=k, seed=3)
        feats = extract_node_features(nl, cfg)
        pivots = np.random.default_rng(cfg.seed).choice(n, size=k, replace=False)
        dist = np.zeros((k, n))
        for r, p in enumerate(pivots):
            for j in range(n):
                d = abs(p - j) % n
                dist[r, j] = min(d, n - d)
        is_pivot = np.isin(np.arange(n), pivots)
        expect = np.where(
            dist.sum(axis=0) > 0, (k - is_pivot) / dist.sum(axis=0), 0.0
        )
        np.testing.assert_allclose(feats[:, 0], expect, atol=1e-12)


# ----------------------------------------------------------------------
# batched BFS vs pure-Python IDDFS
# ----------------------------------------------------------------------

class TestIDDFSKernelEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(
        random_netlist(max_cells=16),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=5),
    )
    def test_paths_match_reference(self, nl, max_depth, max_fanout):
        bfs = iddfs_dsp_paths(nl, max_depth=max_depth, max_fanout=max_fanout, method="bfs")
        ref = iddfs_dsp_paths(nl, max_depth=max_depth, max_fanout=max_fanout, method="python")
        assert [(p.src, p.dst, p.dist, p.n_storage) for p in bfs] == [
            (p.src, p.dst, p.dist, p.n_storage) for p in ref
        ]

    @settings(max_examples=25, deadline=None)
    @given(random_netlist(max_cells=12), st.sampled_from([0, 1, 2]))
    def test_sources_restriction_matches(self, nl, pick):
        dsps = nl.dsp_indices()
        sources = dsps[pick::3]
        bfs = iddfs_dsp_paths(nl, sources=sources, method="bfs")
        ref = iddfs_dsp_paths(nl, sources=sources, method="python")
        assert bfs == ref

    def test_min_storage_over_tied_shortest_paths(self):
        """Two same-length routes with different storage counts: both
        engines must deterministically report the minimum."""
        nl = Netlist("tie")
        a = nl.add_cell("a", CellType.DSP)
        f1 = nl.add_cell("f1", CellType.FF)
        f2 = nl.add_cell("f2", CellType.FF)
        l1 = nl.add_cell("l1", CellType.LUT)
        l2 = nl.add_cell("l2", CellType.LUT)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("s0", a, [f1, l1])
        nl.add_net("s1", f1, [f2])
        nl.add_net("s2", l1, [l2])
        nl.add_net("s3", f2, [b])
        nl.add_net("s4", l2, [b])
        for method in ("bfs", "python"):
            (p,) = iddfs_dsp_paths(nl, method=method)
            assert (p.src, p.dst, p.dist, p.n_storage) == (a, b, 3, 0), method

    def test_unknown_method_rejected(self):
        nl = Netlist("x")
        a = nl.add_cell("a", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n", a, [b])
        with pytest.raises(ValueError, match="unknown method"):
            iddfs_dsp_paths(nl, method="dfs")
