"""Auction assignment: ε-optimality vs the Hungarian oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import hungarian
from repro.solvers.auction import auction_assignment


class TestAuctionBasics:
    def test_identity(self):
        cost = np.array([[1.0, 9.0], [9.0, 1.0]])
        cols, total = auction_assignment(cost)
        assert list(cols) == [0, 1]
        assert total == 2.0

    def test_rectangular(self):
        cost = np.array([[5.0, 1.0, 3.0]])
        cols, total = auction_assignment(cost)
        assert cols[0] == 1 and total == 1.0

    def test_single_column(self):
        cols, total = auction_assignment(np.array([[7.0]]))
        assert cols[0] == 0 and total == 7.0

    def test_all_equal_costs(self):
        cols, total = auction_assignment(np.full((3, 4), 2.0))
        assert len(set(cols.tolist())) == 3
        assert total == 6.0

    def test_too_many_rows(self):
        with pytest.raises(ValueError):
            auction_assignment(np.zeros((3, 2)))

    def test_empty(self):
        cols, total = auction_assignment(np.zeros((0, 4)))
        assert cols.size == 0 and total == 0.0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_auction_exact_on_integer_costs(data):
    """Integer costs + default ε schedule ⇒ exact optimum."""
    n = data.draw(st.integers(1, 6))
    m = data.draw(st.integers(n, 7))
    cost = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(-20, 20), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.float64,
    )
    spread = cost.max() - cost.min()
    eps_min = 0.9 / (n + 1) if spread > 0 else None
    cols, total = auction_assignment(cost, eps_min=eps_min)
    assert len(set(cols.tolist())) == n
    _, ref = hungarian(cost)
    assert total == pytest.approx(ref, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_auction_eps_bound_on_float_costs(seed):
    """Float costs: cost within the documented n·ε bound of optimal."""
    rng = np.random.default_rng(seed)
    n, m = int(rng.integers(1, 8)), int(rng.integers(8, 12))
    cost = rng.uniform(-10, 10, (n, m))
    eps_min = 0.01
    cols, total = auction_assignment(cost, eps_min=eps_min)
    _, ref = hungarian(cost)
    assert total <= ref + n * eps_min + 1e-9
    assert len(set(cols.tolist())) == n


def test_auction_mid_size_near_optimal():
    rng = np.random.default_rng(1)
    cost = rng.uniform(0, 100, (120, 160))
    cols, total = auction_assignment(cost, eps_min=1e-3)
    _, ref = hungarian(cost)
    assert total <= ref + 120 * 1e-3 + 1e-6
