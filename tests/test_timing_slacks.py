"""Backward required-time pass and timing-driven placement."""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist
from repro.placers import Placement, VivadoLikePlacer
from repro.timing import StaticTimingAnalyzer


@pytest.fixture()
def chain_netlist():
    """pad -> ffa -> lut -> ffb, plus a side lut with no endpoint."""
    nl = Netlist("chain")
    nl.target_freq_mhz = 100.0
    pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    a = nl.add_cell("ffa", CellType.FF)
    l = nl.add_cell("lut", CellType.LUT)
    b = nl.add_cell("ffb", CellType.FF)
    dangle = nl.add_cell("dangle", CellType.LUT)
    nl.add_net("n0", pad, [a])
    nl.add_net("n1", a, [l])
    nl.add_net("n2", l, [b])
    nl.add_net("n3", b, [dangle])
    return nl, a, l, b, dangle


class TestRequiredTimes:
    def test_min_cell_slack_equals_wns(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        rep = StaticTimingAnalyzer(mini_accel).analyze(p, period_ns=5.0, with_slacks=True)
        assert np.nanmin(rep.cell_output_slack) == pytest.approx(rep.wns_ns, abs=1e-9)

    def test_slack_disabled_by_default(self, chain_netlist, small_dev):
        nl, *_ = chain_netlist
        rep = StaticTimingAnalyzer(nl).analyze(Placement(nl, small_dev))
        assert rep.cell_output_slack is None

    def test_hand_computed_slack(self, chain_netlist, small_dev):
        nl, a, l, b, dangle = chain_netlist
        p = Placement(nl, small_dev)
        p.xy[[a, l, b, dangle]] = [[0, 0], [100, 0], [200, 0], [300, 0]]
        sta = StaticTimingAnalyzer(nl)
        dm = sta.dm
        rep = sta.analyze(p, period_ns=10.0, with_slacks=True)
        arr_b_in = dm.clk_to_q[CellType.FF] + dm.net_delay(100.0) + dm.prop[CellType.LUT] + dm.net_delay(100.0)
        expect = 10.0 - dm.setup[CellType.FF] - arr_b_in
        # ffa's output slack equals the full-path slack (only one path)
        assert rep.cell_output_slack[a] == pytest.approx(expect, abs=1e-9)
        # lut shares the same path slack
        assert rep.cell_output_slack[l] == pytest.approx(expect, abs=1e-9)

    def test_no_endpoint_is_nan(self, chain_netlist, small_dev):
        nl, a, l, b, dangle = chain_netlist
        rep = StaticTimingAnalyzer(nl).analyze(
            Placement(nl, small_dev), period_ns=10.0, with_slacks=True
        )
        # dangle drives nothing: no required time
        assert np.isnan(rep.cell_output_slack[dangle])
        # ffb drives only dangle (no endpoint downstream): also NaN
        assert np.isnan(rep.cell_output_slack[b])

    def test_slack_nonincreasing_along_critical_path(self, mini_accel, small_dev):
        """Every cell on the critical path carries the WNS as its slack."""
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        rep = StaticTimingAnalyzer(mini_accel).analyze(p, period_ns=5.0, with_slacks=True)
        for u in rep.critical_path[:-1]:  # endpoint has no output slack req
            assert rep.cell_output_slack[u] == pytest.approx(rep.wns_ns, abs=1e-6)


class TestTimingDrivenPlacer:
    def test_td_flow_is_legal(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, timing_driven=True, device=small_dev).place(mini_accel)
        assert p.is_legal()

    def test_weights_restored_after_place(self, mini_accel, small_dev):
        before = [n.weight for n in mini_accel.nets]
        VivadoLikePlacer(seed=0, timing_driven=True, device=small_dev).place(mini_accel)
        after = [n.weight for n in mini_accel.nets]
        assert before == after

    def test_td_changes_placement(self, mini_accel, small_dev):
        p0 = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        p1 = VivadoLikePlacer(seed=0, timing_driven=True, device=small_dev).place(mini_accel)
        assert not np.array_equal(p0.xy, p1.xy)
