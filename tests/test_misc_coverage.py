"""Odds and ends: no-PS devices, SVG on PS-less fabrics, CLI verilog flag."""

import numpy as np
import pytest

from repro.cli import main
from repro.eval.visualization import placement_to_svg
from repro.netlist import CellType, Netlist
from repro.placers import Placement, VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer


class TestNoPSDevice:
    def test_generator_without_device(self):
        from repro.accelgen import generate_suite

        nl = generate_suite("ismartdnn", scale=0.02)  # synthetic frame
        ps = nl.cells_of_type(CellType.PS)[0]
        assert ps.fixed_xy == (100.0, 100.0)

    def test_placement_flow_on_ps_less_fabric(self, no_ps_dev):
        nl = Netlist("nops")
        pad = nl.add_cell("pad", CellType.IO, fixed_xy=(5.0, 5.0))
        cells = [nl.add_cell(f"l{i}", CellType.LUT) for i in range(20)]
        dsps = [nl.add_cell(f"d{i}", CellType.DSP, is_datapath=True) for i in range(4)]
        nl.add_net("seed", pad, [cells[0]])
        for a, b in zip(cells, cells[1:]):
            nl.add_net(f"n{a}", a, [b])
        nl.add_net("x", cells[-1], [dsps[0]])
        for a, b in zip(dsps, dsps[1:]):
            nl.add_net(f"c{a}", a, [b])
        nl.add_macro(dsps)
        p = VivadoLikePlacer(seed=0, device=no_ps_dev).place(nl)
        assert p.is_legal()

    def test_svg_without_ps(self, no_ps_dev):
        nl = Netlist("nops2")
        pad = nl.add_cell("pad", CellType.IO, fixed_xy=(5.0, 5.0))
        d = nl.add_cell("d", CellType.DSP, is_datapath=True)
        nl.add_net("n", pad, [d])
        p = Placement(nl, no_ps_dev)
        p.assign_site(d, 0)
        svg = placement_to_svg(p, title="no-ps")
        assert svg.startswith("<svg")


class TestRoutingIntoSTA:
    def test_detour_array_alignment(self, mini_accel, small_dev):
        """Router detours index by net id — STA must consume them aligned."""
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        r = GlobalRouter(grid=(8, 8), capacity=0.05, detour_strength=2.0).route(p)
        assert r.net_detour.shape[0] == len(mini_accel.nets)
        sta = StaticTimingAnalyzer(mini_accel)
        w_plain = sta.analyze(p, period_ns=8.0).wns_ns
        w_detour = sta.analyze(p, r, period_ns=8.0).wns_ns
        assert w_detour <= w_plain + 1e-12


class TestCLIVerilog:
    def test_generate_with_verilog(self, tmp_path, capsys):
        out = tmp_path / "n.json"
        v = tmp_path / "n.v"
        rc = main(
            [
                "generate",
                "--suite",
                "ismartdnn",
                "--scale",
                "0.02",
                "-o",
                str(out),
                "--verilog",
                str(v),
            ]
        )
        assert rc == 0
        assert v.exists()
        assert "module" in v.read_text()
