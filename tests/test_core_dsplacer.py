"""DSPlacer facade end-to-end tests on a small device."""

import numpy as np
import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import DatapathIdentifier, build_graph_sample
from repro.core.placement import replace_other_components
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer


@pytest.fixture(scope="module")
def result(mini_accel, small_dev):
    placer = DSPlacer(small_dev, DSPlacerConfig(identification="oracle", mcf_iterations=6, seed=0))
    return placer.place(mini_accel)


class TestDSPlacerFlow:
    def test_placement_is_legal(self, result):
        assert result.placement.is_legal(), result.placement.legality_violations()[:5]

    def test_identification_ran(self, result):
        assert result.identification.method == "oracle"
        assert result.identification.accuracy == 1.0

    def test_datapath_dsps_found(self, result, mini_accel):
        truth = sum(1 for c in mini_accel.cells if c.ctype.is_dsp and c.is_datapath)
        assert result.n_datapath_dsps == truth

    def test_dsp_graph_nontrivial(self, result):
        assert result.dsp_graph_nodes > 0
        assert result.dsp_graph_edges > 0

    def test_phases_recorded(self, result):
        expected = {
            "prototype_placement",
            "datapath_extraction",
            "dsp_placement",
            "other_placement",
        }
        assert expected <= set(result.phase_seconds)
        assert result.total_seconds > 0

    def test_mcf_iterations_recorded(self, result):
        assert len(result.mcf_iterations_used) == 2  # outer_iterations default
        assert all(i >= 1 for i in result.mcf_iterations_used)

    def test_cascades_all_adjacent(self, result, mini_accel, small_dev):
        sites = small_dev.sites("DSP")
        p = result.placement
        for pred, succ in mini_accel.cascade_pairs():
            sp, ss = int(p.site[pred]), int(p.site[succ])
            assert ss == sp + 1
            assert sites[sp].col == sites[ss].col


class TestDSPlacerQuality:
    def test_timing_not_worse_than_baseline(self, result, mini_accel, small_dev):
        base = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        sta = StaticTimingAnalyzer(mini_accel)
        router = GlobalRouter(grid=(16, 16))
        wns_base = sta.analyze(base, router.route(base), period_ns=8.0).wns_ns
        wns_dsp = sta.analyze(
            result.placement, router.route(result.placement), period_ns=8.0
        ).wns_ns
        assert wns_dsp >= wns_base - 0.15  # never catastrophically worse

    def test_heuristic_identification_flow(self, mini_accel, small_dev):
        placer = DSPlacer(small_dev, DSPlacerConfig(identification="heuristic", mcf_iterations=3))
        res = placer.place(mini_accel)
        assert res.placement.is_legal()

    def test_initial_placement_reused(self, mini_accel, small_dev):
        base = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        placer = DSPlacer(small_dev, DSPlacerConfig(identification="oracle", mcf_iterations=3))
        res = placer.place(mini_accel, initial_placement=base)
        assert res.phase_seconds["prototype_placement"] < 0.2
        assert res.placement.is_legal()

    def test_trained_identifier_flow(self, mini_accel, small_dev):
        sample = build_graph_sample(mini_accel)
        ident = DatapathIdentifier(method="gcn", epochs=30).fit([sample])
        placer = DSPlacer(small_dev, DSPlacerConfig(mcf_iterations=3), identifier=ident)
        res = placer.place(mini_accel, sample=sample)
        assert res.placement.is_legal()
        assert res.identification.method == "gcn"


class TestConfigValidation:
    def test_untrained_gcn_rejected_at_construction(self, small_dev):
        with pytest.raises(ValueError, match="trained"):
            DSPlacer(small_dev, DSPlacerConfig(identification="gcn"))

    def test_bad_base_placer(self, small_dev, mini_accel):
        placer = DSPlacer(small_dev, DSPlacerConfig(identification="oracle", base_placer="quartus"))
        with pytest.raises(ValueError, match="base placer"):
            placer.place(mini_accel)

    def test_amf_base_placer(self, small_dev, mini_accel):
        placer = DSPlacer(
            small_dev,
            DSPlacerConfig(identification="oracle", base_placer="amf", mcf_iterations=2),
        )
        assert placer.place(mini_accel).placement.is_legal()


class TestIncrementalReplace:
    def test_frozen_dsps_stay(self, mini_accel, small_dev):
        base = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        frozen = [c.index for c in mini_accel.cells if c.ctype.is_dsp and c.is_datapath]
        before = base.site[frozen].copy()
        out = replace_other_components(mini_accel, small_dev, base, frozen)
        assert np.array_equal(out.site[frozen], before)
        assert out.is_legal()
