"""Evaluation harness tests: tables, visualization, profiling, experiments."""

import numpy as np
import pytest

from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.eval import ExperimentSettings, render_table, run_table1
from repro.eval.profiling import RuntimeBreakdown
from repro.eval.tables import render_csv
from repro.eval.visualization import layout_metrics, placement_to_svg
from repro.placers import VivadoLikePlacer


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4

    def test_render_with_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_alignment(self):
        out = render_table(["col"], [[123456], [1]])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_csv(self):
        out = render_csv(["a", "b"], [[1, 2]])
        assert out.splitlines()[1] == "1,2"

    def test_float_formatting(self):
        out = render_table(["x"], [[0.123456]])
        assert "0.123" in out


class TestVisualization:
    @pytest.fixture(scope="class")
    def placed(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        paths = iddfs_dsp_paths(mini_accel)
        g = build_dsp_graph(mini_accel, paths)
        flags = {i: bool(mini_accel.cells[i].is_datapath) for i in mini_accel.dsp_indices()}
        return p, prune_control_dsps(g, flags)

    def test_svg_written(self, placed, tmp_path):
        p, g = placed
        path = tmp_path / "layout.svg"
        svg = placement_to_svg(p, g, path=path, title="test")
        assert path.exists()
        assert svg.startswith("<svg")
        assert "</svg>" in svg
        assert "test" in svg

    def test_svg_contains_dsp_marks(self, placed):
        p, g = placed
        svg = placement_to_svg(p, g)
        assert svg.count("#d62728") >= p.netlist.stats().n_dsp  # datapath color used

    def test_layout_metrics_ranges(self, placed):
        p, g = placed
        m = layout_metrics(p, g)
        assert 0.0 <= m.cascade_adjacent_frac <= 1.0
        assert -1.0 <= m.angle_monotonicity <= 1.0
        assert m.mean_datapath_edge_um >= 0
        assert 0.0 <= m.dsp_bbox_area_frac <= 1.0

    def test_legal_placement_cascades_adjacent(self, placed):
        p, g = placed
        assert layout_metrics(p, g).cascade_adjacent_frac == 1.0


class TestProfiling:
    def test_percentages_sum_to_100(self):
        rb = RuntimeBreakdown("x", {"a": 1.0, "b": 3.0})
        assert sum(rb.percentages.values()) == pytest.approx(100.0)

    def test_rows_sorted(self):
        rb = RuntimeBreakdown("x", {"a": 1.0, "b": 3.0, "c": 2.0})
        rows = rb.rows()
        assert [r[0] for r in rows] == ["b", "c", "a"]

    def test_total(self):
        assert RuntimeBreakdown("x", {"a": 1.5, "b": 0.5}).total == 2.0


class TestExperimentRunners:
    def test_table1_full_scale_counts(self):
        rows = run_table1()
        assert len(rows) == 5
        by_name = {r["design"]: r for r in rows}
        assert by_name["iSmartDNN"]["dsp"] == 197
        assert by_name["SkrSkr-3"]["dsp"] == 1431
        assert by_name["SkrSkr-1"]["freq_mhz"] == 195.0
        # DSP% ascends across the SkrSkr family like the paper's 37/68/83
        assert (
            by_name["SkrSkr-1"]["dsp_pct"]
            < by_name["SkrSkr-2"]["dsp_pct"]
            < by_name["SkrSkr-3"]["dsp_pct"]
        )

    def test_settings_env_defaults(self):
        s = ExperimentSettings()
        assert 0 < s.scale <= 1.0
        assert len(s.suites) == 5
