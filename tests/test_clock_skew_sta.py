"""Skew models through both STA engines + the skew-aware assignment term.

Pins three contracts:

- vectorized and reference STA agree to 1e-9 under **all three**
  :class:`~repro.clock.SkewModel` implementations over jittered placements;
- the default :class:`~repro.clock.RegionSkew` reproduces the historical
  inline region-step formula bitwise (reports must not move on default
  configs);
- ``has_cascades=False`` fabrics price cascade edges as plain routed nets,
  and the opt-in assignment skew term behaves (masked, monotone in weight).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import (
    HTreeConfig,
    HTreeSkew,
    RegionSkew,
    ZeroSkew,
    get_skew_model,
    synthesize_htree,
)
from repro.errors import ConfigurationError
from repro.fpga import slot_fabric, small_device
from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.timing import DelayModel, StaticTimingAnalyzer

DEV = small_device(n_dsp_cols=3, dsp_rows=12)
TREE = synthesize_htree(DEV, HTreeConfig(depth=2, jitter_ns=0.02, seed=5))


def _models():
    return [
        RegionSkew(0.03),
        HTreeSkew(TREE),
        ZeroSkew(),
    ]


@st.composite
def skew_case(draw):
    """Random netlist + jittered placement (same shape as test_sta_vectorized)."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n_seq = draw(st.integers(1, 8))
    n_comb = draw(st.integers(0, 10))
    n_dsp = draw(st.integers(0, 4))
    nl = Netlist("h")
    nl.target_freq_mhz = 200.0
    seq_kinds = [CellType.FF, CellType.BRAM]
    cells = [nl.add_cell(f"s{i}", seq_kinds[i % 2]) for i in range(n_seq)]
    cells += [nl.add_cell(f"c{i}", CellType.LUT) for i in range(n_comb)]
    dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(n_dsp)]
    if n_dsp >= 2:
        nl.add_macro(dsps)
    cells += dsps
    n = len(cells)
    for k in range(draw(st.integers(1, 2 * n))):
        driver = int(rng.integers(0, n))
        sinks = [int(s) for s in rng.integers(0, n, int(rng.integers(1, 4)))
                 if int(s) != driver]
        if sinks:
            nl.add_net(f"n{k}", driver, sinks)
    for i in range(1, n_dsp):
        nl.add_net(f"casc{i}", dsps[i - 1], [dsps[i]])
    place = Placement(nl, DEV)
    place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (n, 2))
    model_i = draw(st.integers(0, 2))
    return nl, place, model_i


def _assert_reports_match(a, b):
    assert a.wns_ns == pytest.approx(b.wns_ns, abs=1e-9)
    assert a.tns_ns == pytest.approx(b.tns_ns, abs=1e-9)
    assert a.n_endpoints == b.n_endpoints
    assert a.n_failing == b.n_failing
    np.testing.assert_allclose(a.endpoint_slack, b.endpoint_slack, rtol=0, atol=1e-9)
    assert a.critical_path == b.critical_path
    if a.cell_output_slack is not None:
        np.testing.assert_allclose(
            a.cell_output_slack, b.cell_output_slack, rtol=0, atol=1e-9
        )


class TestEngineEquivalenceUnderSkewModels:
    @settings(max_examples=60, deadline=None)
    @given(skew_case(), st.booleans())
    def test_vectorized_matches_reference(self, case, with_slacks):
        nl, place, model_i = case
        model = _models()[model_i]
        a = StaticTimingAnalyzer(nl, method="reference", skew_model=model).analyze(
            place, with_slacks=with_slacks
        )
        b = StaticTimingAnalyzer(nl, method="vectorized", skew_model=model).analyze(
            place, with_slacks=with_slacks
        )
        _assert_reports_match(a, b)

    @pytest.mark.parametrize("model", _models(), ids=lambda m: m.name)
    def test_generated_suite_matches(self, mini_accel, model):
        place = Placement(mini_accel, DEV)
        rng = np.random.default_rng(11)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (len(mini_accel), 2))
        a = StaticTimingAnalyzer(
            mini_accel, method="reference", skew_model=model
        ).analyze(place, with_slacks=True)
        b = StaticTimingAnalyzer(
            mini_accel, method="vectorized", skew_model=model
        ).analyze(place, with_slacks=True)
        _assert_reports_match(a, b)


class TestRegionSkewBitwiseCompatibility:
    """RegionSkew must reproduce the historical inline formula exactly."""

    def _historical(self, dm, placement, launch, capture):
        dev = placement.device
        ncx, ncy = dev.clock_region_shape
        region_x = np.clip(
            (placement.xy[:, 0] / max(dev.width, 1e-9) * ncx).astype(np.int64),
            0, ncx - 1,
        )
        region_y = np.clip(
            (placement.xy[:, 1] / max(dev.height, 1e-9) * ncy).astype(np.int64),
            0, ncy - 1,
        )
        cheb = np.maximum(
            np.abs(region_x[launch] - region_x[capture]),
            np.abs(region_y[launch] - region_y[capture]),
        )
        return dm.clock_skew_per_region * cheb

    def test_penalty_bitwise_equal(self, mini_accel, rng):
        dm = DelayModel()
        place = Placement(mini_accel, DEV)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (len(mini_accel), 2))
        n = len(mini_accel)
        launch = rng.integers(0, n, 300)
        capture = rng.integers(0, n, 300)
        got = RegionSkew(dm.clock_skew_per_region).arrival_penalty(
            place, launch, capture
        )
        want = self._historical(dm, place, launch, capture)
        np.testing.assert_array_equal(got, want)

    def test_default_sta_uses_region_skew(self, mini_accel):
        sta = StaticTimingAnalyzer(mini_accel)
        assert isinstance(sta.skew, RegionSkew)
        assert sta.skew.skew_per_region == DelayModel().clock_skew_per_region

    def test_default_report_equals_explicit_region_model(self, mini_accel, rng):
        place = Placement(mini_accel, DEV)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (len(mini_accel), 2))
        a = StaticTimingAnalyzer(mini_accel).analyze(place, with_slacks=True)
        b = StaticTimingAnalyzer(
            mini_accel, skew_model=RegionSkew(0.03)
        ).analyze(place, with_slacks=True)
        assert a.wns_ns == b.wns_ns and a.tns_ns == b.tns_ns
        np.testing.assert_array_equal(a.endpoint_slack, b.endpoint_slack)
        np.testing.assert_array_equal(a.cell_output_slack, b.cell_output_slack)

    def test_zero_skew_equals_region_zero(self, mini_accel, rng):
        place = Placement(mini_accel, DEV)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (len(mini_accel), 2))
        a = StaticTimingAnalyzer(mini_accel, skew_model=ZeroSkew()).analyze(place)
        b = StaticTimingAnalyzer(mini_accel, skew_model=RegionSkew(0.0)).analyze(place)
        assert a.wns_ns == b.wns_ns
        np.testing.assert_array_equal(a.endpoint_slack, b.endpoint_slack)


class TestHTreeSkewSemantics:
    def test_signed_penalty(self, rng):
        nl = Netlist("pair")
        nl.target_freq_mhz = 100.0
        f0 = nl.add_cell("f0", CellType.FF)
        f1 = nl.add_cell("f1", CellType.FF)
        nl.add_net("n", f0, [f1])
        place = Placement(nl, DEV)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (2, 2))
        model = HTreeSkew(TREE)
        p = model.arrival_penalty(
            place, np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        a = TREE.skew_at(place.xy[:, 0], place.xy[:, 1])
        assert p[0] == pytest.approx(a[0] - a[1], abs=0)
        # a late capture clock buys slack: penalty flips sign when swapped
        q = model.arrival_penalty(
            place, np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        assert q[0] == pytest.approx(-p[0], abs=0)

    def test_factory(self):
        dev = slot_fabric(0.05)
        m = get_skew_model("htree", dev)
        assert isinstance(m, HTreeSkew)
        assert m.tree is dev.clock_tree  # reuses the attached tree
        m2 = get_skew_model("htree", DEV)  # no attached tree: synthesizes
        assert isinstance(m2, HTreeSkew) and m2.tree.n_taps > 0
        assert isinstance(get_skew_model("region", DEV), RegionSkew)
        assert isinstance(get_skew_model("zero", DEV), ZeroSkew)
        with pytest.raises(ConfigurationError, match="skew model"):
            get_skew_model("banana", DEV)

    def test_region_skew_validates(self):
        with pytest.raises(ConfigurationError, match="skew_per_region"):
            RegionSkew(-0.1)


class TestSlotFabricCascadePricing:
    """``has_cascades=False`` prices cascade edges as ordinary fabric nets."""

    def _cascade_pair(self, device):
        nl = Netlist("casc2")
        nl.target_freq_mhz = 200.0
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(2)]
        nl.add_macro(dsps)
        nl.add_net("c", dsps[0], [dsps[1]])
        place = Placement(nl, device)
        ids = device.column_site_ids("DSP", 0)
        place.assign_site(0, ids[0])
        place.assign_site(1, ids[1])  # consecutive rows: a legal cascade hop
        return nl, place

    @pytest.mark.parametrize("method", ["vectorized", "reference"])
    def test_slot_fabric_charges_net_delay(self, method):
        dev = slot_fabric(0.05)
        assert not dev.has_cascades
        nl, place = self._cascade_pair(dev)
        dm = DelayModel()
        rep = StaticTimingAnalyzer(nl, dm, method=method).analyze(
            place, period_ns=10.0
        )
        dist = float(np.abs(place.xy[0] - place.xy[1]).sum())
        expect = (
            10.0 - dm.setup[CellType.DSP] - dm.clk_to_q[CellType.DSP]
            - dm.net_delay(dist)
        )
        assert rep.wns_ns == pytest.approx(expect, abs=1e-9)

    @pytest.mark.parametrize("method", ["vectorized", "reference"])
    def test_cascade_fabric_charges_fixed_hop(self, method):
        dev = small_device(n_dsp_cols=2, dsp_rows=8, with_ps=False, name="cascdev")
        assert dev.has_cascades
        nl, place = self._cascade_pair(dev)
        dm = DelayModel()
        rep = StaticTimingAnalyzer(nl, dm, method=method).analyze(
            place, period_ns=10.0
        )
        expect = (
            10.0 - dm.setup[CellType.DSP] - dm.clk_to_q[CellType.DSP]
            - dm.cascade_fixed
        )
        assert rep.wns_ns == pytest.approx(expect, abs=1e-9)


class TestDelayModelValidation:
    def test_negative_setup_rejected(self):
        with pytest.raises(ConfigurationError, match="setup"):
            DelayModel(setup={CellType.FF: -0.01})

    def test_negative_prop_rejected(self):
        with pytest.raises(ConfigurationError, match="prop"):
            DelayModel(prop={CellType.LUT: -1.0})

    def test_negative_clk_to_q_rejected(self):
        with pytest.raises(ConfigurationError, match="clk_to_q"):
            DelayModel(clk_to_q={CellType.FF: -0.1})

    @pytest.mark.parametrize(
        "knob", ["net_base", "net_per_um", "cascade_fixed",
                 "cascade_escape_penalty", "clock_skew_per_region"]
    )
    def test_negative_scalar_knob_rejected(self, knob):
        with pytest.raises(ConfigurationError, match=knob):
            DelayModel(**{knob: -0.5})

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="net_base"):
            DelayModel(net_base=float("nan"))

    def test_defaults_still_construct(self):
        DelayModel()
        DelayModel(clock_skew_per_region=0.0)


class TestAssignmentSkewTerm:
    def _assigner(self, device, skew_weight, model):
        from repro.core.extraction import (
            build_dsp_graph,
            iddfs_dsp_paths,
            prune_control_dsps,
        )
        from repro.core.placement.assignment import (
            AssignmentConfig,
            DatapathDSPAssigner,
        )

        nl = Netlist("asg")
        nl.target_freq_mhz = 100.0
        ffs = [nl.add_cell(f"f{i}", CellType.FF) for i in range(4)]
        dsps = [nl.add_cell(f"d{i}", CellType.DSP, is_datapath=True) for i in range(3)]
        for i, d in enumerate(dsps):
            nl.add_net(f"in{i}", ffs[i], [d])
            nl.add_net(f"out{i}", d, [ffs[(i + 1) % 4]])
        nl.add_net("chain0", dsps[0], [dsps[1]])
        nl.add_net("chain1", dsps[1], [dsps[2]])
        graph = prune_control_dsps(
            build_dsp_graph(nl, iddfs_dsp_paths(nl)),
            {i: True for i in nl.dsp_indices()},
        )
        place = Placement(nl, device)
        rng = np.random.default_rng(0)
        place.xy[:] = rng.uniform(
            0.0, [device.width, device.height], (len(nl.cells), 2)
        )
        asg = DatapathDSPAssigner(
            nl,
            device,
            graph,
            sorted(graph.nodes),
            AssignmentConfig(skew_weight=skew_weight),
            skew_model=model,
        )
        return asg, place

    def test_invalid_weight_rejected(self):
        from repro.core.placement.assignment import AssignmentConfig

        with pytest.raises(ConfigurationError, match="skew_weight"):
            AssignmentConfig(skew_weight=-1.0)
        with pytest.raises(ConfigurationError, match="skew_weight"):
            AssignmentConfig(skew_weight=float("inf"))

    def test_off_by_default(self):
        dev = slot_fabric(0.05)
        asg, place = self._assigner(dev, 0.0, HTreeSkew(dev.clock_tree))
        assert asg._site_skew is None

    def test_region_model_has_no_term(self):
        dev = slot_fabric(0.05)
        asg, place = self._assigner(dev, 5.0, RegionSkew(0.03))
        assert asg._site_skew is None  # no per-point arrivals → term inert
        asg0, _ = self._assigner(dev, 0.0, RegionSkew(0.03))
        np.testing.assert_array_equal(
            asg.cost_matrix(place, None), asg0.cost_matrix(place, None)
        )

    def test_htree_term_changes_costs_monotonically(self):
        dev = slot_fabric(0.05)
        model = HTreeSkew(dev.clock_tree)
        asg0, place = self._assigner(dev, 0.0, model)
        asg1, _ = self._assigner(dev, 10.0, model)
        asg2, _ = self._assigner(dev, 20.0, model)
        c0 = asg0.cost_matrix(place, None)
        c1 = asg1.cost_matrix(place, None)
        c2 = asg2.cost_matrix(place, None)
        d1, d2 = c1 - c0, c2 - c0
        assert (d1 >= -1e-12).all()
        np.testing.assert_allclose(d2, 2.0 * d1, rtol=1e-9)
        assert float(d1.max()) > 0.0

    def test_dsplacer_end_to_end_with_skew(self):
        from repro.accelgen import generate_suite
        from repro.core import DSPlacer
        from repro.core.dsplacer import DSPlacerConfig

        dev = slot_fabric(0.05)
        nl = generate_suite("skynet", scale=0.02, device=dev, seed=0)
        cfg = DSPlacerConfig(skew_model="htree", skew_weight=5.0, outer_iterations=1)
        result = DSPlacer(dev, cfg).place(nl)
        assert result.placement.is_legal()

    def test_skew_weighted_run_escapes_hpwl_rollback(self):
        """The wirelength rollback guard must not veto skew-aware trades.

        At skynet@0.05 on the slot fabric the datapath placement costs a
        little HPWL: the skew-blind flow rolls back to the prototype, the
        skew-weighted flow keeps its last legal iterate.
        """
        from repro.accelgen import generate_suite
        from repro.core import DSPlacer
        from repro.core.dsplacer import DSPlacerConfig

        dev = slot_fabric(0.05)
        nl = generate_suite("skynet", scale=0.05, device=dev, seed=0)
        blind = DSPlacer(
            dev, DSPlacerConfig(seed=0, skew_model="htree", skew_weight=0.0)
        ).place(nl)
        events = [e["detail"] for e in blind.health.to_dict()["events"]]
        assert any("regressed past" in d for d in events), events
        aware = DSPlacer(
            dev, DSPlacerConfig(seed=0, skew_model="htree", skew_weight=5.0)
        ).place(nl)
        assert aware.placement.is_legal()
        events = [e["detail"] for e in aware.health.to_dict()["events"]]
        assert not any("regressed past" in d for d in events), events

    def test_dsplacer_rejects_unknown_skew_model(self):
        from repro.accelgen import generate_suite
        from repro.core import DSPlacer
        from repro.core.dsplacer import DSPlacerConfig

        dev = slot_fabric(0.05)
        nl = generate_suite("skynet", scale=0.02, device=dev, seed=0)
        cfg = DSPlacerConfig(skew_model="banana")
        with pytest.raises(ConfigurationError, match="skew model"):
            DSPlacer(dev, cfg).place(nl)
