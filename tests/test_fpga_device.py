"""Unit tests for the device model."""

import numpy as np
import pytest

from repro.fpga import PSBlock, SiteColumn, small_device


class TestSiteOrdering:
    def test_sites_column_major_ascending(self, small_dev):
        for kind in ("CLB", "DSP", "BRAM"):
            sites = small_dev.sites(kind)
            for a, b in zip(sites, sites[1:]):
                assert (a.x, a.y) < (b.x, b.y)

    def test_same_column_consecutive_ids(self, small_dev):
        """The paper's eq. (5) precondition: vertical neighbours have
        consecutive indices."""
        sites = small_dev.sites("DSP")
        for a, b in zip(sites, sites[1:]):
            if a.col == b.col:
                assert b.sid == a.sid + 1
                assert b.row == a.row + 1

    def test_column_site_ids_consecutive(self, small_dev):
        for c in range(small_dev.n_dsp_columns):
            ids = small_dev.column_site_ids("DSP", c)
            assert ids == list(range(ids[0], ids[0] + len(ids)))

    def test_capacity_sums(self, small_dev):
        total = sum(c.n_sites for c in small_dev.kind_columns("DSP"))
        assert total == small_dev.n_dsp


class TestQueries:
    def test_site_xy_shape(self, small_dev):
        xy = small_dev.site_xy("DSP")
        assert xy.shape == (small_dev.n_dsp, 2)

    def test_nearest_site_is_nearest(self, small_dev, rng):
        xy = small_dev.site_xy("DSP")
        for _ in range(20):
            p = rng.uniform([0, 0], [small_dev.width, small_dev.height])
            got = small_dev.nearest_sites("DSP", p[0], p[1], k=1)[0]
            d = ((xy - p) ** 2).sum(axis=1)
            assert d[got] == pytest.approx(d.min())

    def test_nearest_sites_sorted(self, small_dev):
        cand = small_dev.nearest_sites("DSP", 100.0, 100.0, k=5)
        xy = small_dev.site_xy("DSP")
        d = ((xy[cand] - [100.0, 100.0]) ** 2).sum(axis=1)
        assert np.all(np.diff(d) >= 0)

    def test_nearest_more_than_available(self, small_dev):
        cand = small_dev.nearest_sites("BRAM", 0, 0, k=10_000)
        assert len(cand) == small_dev.n_sites("BRAM")

    def test_clock_region_corners(self, small_dev):
        assert small_dev.clock_region_of(0.0, 0.0) == (0, 0)
        cx, cy = small_dev.clock_region_of(small_dev.width - 1, small_dev.height - 1)
        ncx, ncy = small_dev.clock_region_shape
        assert (cx, cy) == (ncx - 1, ncy - 1)

    def test_clock_regions_of_matches_scalar(self, small_dev, rng):
        xs = rng.uniform(-20.0, small_dev.width + 20.0, 200)
        ys = rng.uniform(-20.0, small_dev.height + 20.0, 200)
        cx, cy = small_dev.clock_regions_of(xs, ys)
        for i in range(xs.size):
            assert (int(cx[i]), int(cy[i])) == small_dev.clock_region_of(
                float(xs[i]), float(ys[i])
            )

    def test_clock_regions_of_boundaries(self, small_dev):
        ncx, ncy = small_dev.clock_region_shape
        w, h = small_dev.width, small_dev.height
        xs = np.array([0.0, w, w + 5.0, -3.0, w / 2.0])
        ys = np.array([0.0, h, h + 5.0, -3.0, h / 2.0])
        cx, cy = small_dev.clock_regions_of(xs, ys)
        # x == width lands in (and overshoots clamp to) the last region
        assert cx[1] == ncx - 1 and cy[1] == ncy - 1
        assert cx[2] == ncx - 1 and cy[2] == ncy - 1
        # negative coordinates clamp to region 0
        assert cx[3] == 0 and cy[3] == 0
        assert cx[0] == 0 and cy[0] == 0
        assert cx.dtype == np.int64 and cy.dtype == np.int64

    def test_clock_regions_of_empty(self, small_dev):
        cx, cy = small_dev.clock_regions_of(np.zeros(0), np.zeros(0))
        assert cx.size == 0 and cy.size == 0

    def test_has_cascades_default(self, small_dev):
        assert small_dev.has_cascades is True
        assert small_dev.clock_tree is None

    def test_validate_passes(self, small_dev):
        small_dev.validate()


class TestPSBlock:
    def test_ps_attachment_points(self, small_dev):
        ps = small_dev.ps
        x, y = ps.ps_to_pl_xy
        assert y == ps.y1  # PS→PL buses enter above the PS
        x2, y2 = ps.pl_to_ps_xy
        assert x2 == ps.x1  # PL→PS buses exit on the right

    def test_contains(self):
        ps = PSBlock(0, 0, 10, 20)
        assert ps.contains(5, 5)
        assert not ps.contains(10, 5)
        assert not ps.contains(5, 20)

    def test_no_sites_inside_ps(self, small_dev):
        ps = small_dev.ps
        for kind in ("CLB", "DSP", "BRAM"):
            for s in small_dev.sites(kind):
                assert not ps.contains(s.x, s.y)

    def test_no_ps_device(self, no_ps_dev):
        assert no_ps_dev.ps is None
        no_ps_dev.validate()


class TestSiteColumn:
    def test_non_monotone_ys_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            SiteColumn(kind="DSP", col=0, x=10.0, ys=np.array([1.0, 1.0, 2.0]))
