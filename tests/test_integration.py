"""Cross-module integration tests: the full paper pipeline at small scale."""

import numpy as np
import pytest

from repro.accelgen import generate_suite
from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import (
    DatapathIdentifier,
    build_dsp_graph,
    build_graph_sample,
    iddfs_dsp_paths,
    prune_control_dsps,
)
from repro.eval.visualization import layout_metrics
from repro.fpga import scaled_zcu104
from repro.netlist import netlist_from_json, netlist_to_json
from repro.placers import AMFLikePlacer, VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency


@pytest.fixture(scope="module")
def setup():
    dev = scaled_zcu104(0.08)
    nl = generate_suite("skrskr1", scale=0.08, device=dev)
    return dev, nl


@pytest.fixture(scope="module")
def flows(setup):
    dev, nl = setup
    router = GlobalRouter()
    sta = StaticTimingAnalyzer(nl)
    out = {}
    for name, make in (
        ("vivado", lambda: VivadoLikePlacer(seed=0, device=dev).place(nl)),
        ("amf", lambda: AMFLikePlacer(seed=0, device=dev).place(nl)),
        (
            "dsplacer",
            lambda: DSPlacer(
                dev, DSPlacerConfig(identification="oracle", mcf_iterations=8, seed=0)
            )
            .place(nl)
            .placement,
        ),
    ):
        p = make()
        r = router.route(p)
        out[name] = (p, r, max_frequency(sta, p, r))
    return out


class TestFullPipeline:
    def test_all_flows_legal(self, flows):
        for name, (p, _r, _f) in flows.items():
            assert p.is_legal(), f"{name}: {p.legality_violations()[:3]}"

    def test_dsplacer_best_fmax(self, flows):
        """The headline claim at small scale: DSPlacer closes the highest
        clock among the three flows."""
        f = {k: v[2] for k, v in flows.items()}
        assert f["dsplacer"] >= f["vivado"] * 0.99
        assert f["dsplacer"] >= f["amf"] * 0.99

    def test_amf_not_better_than_vivado(self, flows):
        f = {k: v[2] for k, v in flows.items()}
        assert f["amf"] <= f["vivado"] * 1.08

    def test_dsplacer_datapath_more_ordered(self, setup, flows):
        dev, nl = setup
        paths = iddfs_dsp_paths(nl)
        g = build_dsp_graph(nl, paths)
        flags = {i: bool(nl.cells[i].is_datapath) for i in nl.dsp_indices()}
        dg = prune_control_dsps(g, flags)
        m_dsp = layout_metrics(flows["dsplacer"][0], dg)
        m_amf = layout_metrics(flows["amf"][0], dg)
        # DSPlacer orders the datapath along the PS arc at least as well
        assert m_dsp.angle_monotonicity >= m_amf.angle_monotonicity - 0.05

    def test_wns_protocol(self, setup, flows):
        """Paper V-C protocol: at Vivado's break frequency, Vivado is
        negative and DSPlacer is non-negative (or clearly better)."""
        dev, nl = setup
        sta = StaticTimingAnalyzer(nl)
        f_eval = flows["vivado"][2] * 1.03
        period = 1e3 / f_eval
        wns = {
            k: sta.analyze(p, r, period_ns=period).wns_ns for k, (p, r, _f) in flows.items()
        }
        assert wns["vivado"] < 0
        assert wns["dsplacer"] > wns["vivado"]


class TestIdentificationTransfer:
    def test_gcn_trained_on_one_suite_transfers(self, setup):
        """Train GCN on SkyNet, identify on SkrSkr-1 (cross-benchmark)."""
        dev, nl = setup
        train_nl = generate_suite("skynet", scale=0.08)
        train_sample = build_graph_sample(train_nl)
        ident = DatapathIdentifier(method="gcn", epochs=80, seed=0).fit([train_sample])
        res = ident.predict(nl, sample=build_graph_sample(nl))
        assert res.accuracy >= 0.8

    def test_serialization_roundtrip_preserves_pipeline(self, setup):
        dev, nl = setup
        back = netlist_from_json(netlist_to_json(nl))
        p1 = VivadoLikePlacer(seed=5, device=dev).place(nl)
        p2 = VivadoLikePlacer(seed=5, device=dev).place(back)
        assert p1.hpwl() == pytest.approx(p2.hpwl())
