"""Chaos-testing the serve layer: crashes, injected faults, stalls.

Fault scripts are built with :class:`~repro.robustness.FaultInjector`,
serialized via ``to_specs`` and replayed *inside* the worker processes —
the same machinery the in-process chaos suite uses, shipped across the
process boundary. Every attempt of a job replays the same script.
"""

import pytest

from repro.errors import WorkerCrashError
from repro.placers.api import PlacementRequest
from repro.robustness import CRASH_EXIT_CODE, EVERY_CALL, FaultInjector
from repro.serve import PlacementServer

FAST = {"outer_iterations": 1}


def chaos_request(injector: FaultInjector, **overrides) -> PlacementRequest:
    doc = {
        "suite": "ismartdnn",
        "scale": 0.02,
        "seed": 0,
        "config": FAST,
        "faults": tuple(injector.to_specs()),
    }
    doc.update(overrides)
    return PlacementRequest(**doc)


@pytest.fixture()
def server():
    with PlacementServer(workers=2) as srv:
        yield srv


class TestWorkerCrash:
    def test_crash_becomes_failed_job_not_a_hang(self, server, small_dev, mini_accel):
        req = chaos_request(FaultInjector().crash_on("prototype"))
        resp = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=60)
        assert resp.status == "failed"
        assert resp.error["type"] == "WorkerCrashError"
        assert f"exit code {CRASH_EXIT_CODE}" in resp.error["message"]
        with pytest.raises(WorkerCrashError, match="without a result"):
            resp.raise_for_status()

    def test_crashed_jobs_never_poison_the_cache(self, server, small_dev, mini_accel):
        req = chaos_request(FaultInjector().crash_on("prototype"))
        resp = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=60)
        assert resp.cache == "bypass"  # chaos requests skip the cache entirely
        assert server.cache.stats()["entries"] == 0

    def test_server_survives_a_crash(self, server, small_dev, mini_accel):
        crash = chaos_request(FaultInjector().crash_on("prototype"))
        server.submit(crash, netlist=mini_accel, device=small_dev)
        healthy = server.submit(
            PlacementRequest(suite="ismartdnn", scale=0.02, seed=1, config=FAST),
            netlist=mini_accel,
            device=small_dev,
        )
        assert server.drain(timeout=240)
        assert healthy.result().ok

    def test_crash_in_race_fails_every_attempt(self, server, small_dev, mini_accel):
        # fault scripts replay in every attempt, so all k workers die; the
        # job must still resolve (failed), not hang on a half-dead race
        req = chaos_request(FaultInjector().crash_on("prototype"), race_k=2)
        resp = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=120)
        assert resp.status == "failed"
        assert resp.error["type"] == "WorkerCrashError"


class TestInjectedFaults:
    def test_solver_fault_degrades_but_serves(self, server, small_dev, mini_accel):
        """A solver fault inside the worker engages the in-flow fallback:
        the job still succeeds and the health section shows the damage."""
        req = chaos_request(FaultInjector().fail_on("assignment.mcf", call=EVERY_CALL))
        resp = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=120)
        resp.raise_for_status()
        assert resp.quality["legal"]
        events = resp.report["health"]["events"]
        assert any(e["kind"] == "fallback" for e in events)
        assert any(e["kind"] == "failure" for e in events)

    def test_all_engines_down_rolls_back_but_serves(self, server, small_dev, mini_accel):
        fi = FaultInjector()
        for engine in ("mcf", "lsa", "auction"):
            fi.fail_on(f"assignment.{engine}", call=EVERY_CALL)
        resp = server.submit(
            chaos_request(fi), netlist=mini_accel, device=small_dev
        ).result(timeout=120)
        resp.raise_for_status()
        assert resp.quality["legal"]  # the prototype checkpoint survives
        health = resp.report["health"]
        assert health["degraded"]
        assert any(e["kind"] == "rollback" for e in health["events"])

    def test_strict_worker_fault_is_a_typed_failure(self, server, small_dev, mini_accel):
        from repro.errors import SolverError

        fi = FaultInjector()
        for engine in ("mcf", "lsa", "auction"):
            fi.fail_on(f"assignment.{engine}", call=EVERY_CALL)
        req = chaos_request(fi, config={"outer_iterations": 1, "strict": True})
        resp = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=120)
        assert resp.status == "failed"
        with pytest.raises(SolverError):
            resp.raise_for_status()


class TestAttemptTimeout:
    def test_stalled_worker_is_terminated(self, small_dev, mini_accel):
        with PlacementServer(workers=1, attempt_timeout_s=1.0) as srv:
            req = chaos_request(FaultInjector().stall_on("prototype", seconds=60.0))
            resp = srv.submit(req, netlist=mini_accel, device=small_dev).result(timeout=30)
            assert resp.status == "failed"
            assert resp.error["type"] == "WorkerCrashError"
            assert "exceeded" in resp.error["message"]
