"""Shared fixtures: small devices and netlists every suite can afford."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelgen import generate_suite, suite_config
from repro.fpga import small_device
from repro.netlist import CellType, Netlist


@pytest.fixture(scope="session")
def small_dev():
    """A tiny PS-bearing device (3 DSP columns × 12 rows)."""
    return small_device(n_dsp_cols=3, dsp_rows=12)


@pytest.fixture(scope="session")
def no_ps_dev():
    return small_device(n_dsp_cols=2, dsp_rows=8, with_ps=False, name="nops")


@pytest.fixture()
def tiny_netlist():
    """Hand-built netlist: PS + IO + 2 DSP macros + logic + BRAM.

    Small enough to reason about by hand in assertions; contains every cell
    kind and both macro and single DSPs.
    """
    nl = Netlist("tiny")
    nl.target_freq_mhz = 100.0
    ps = nl.add_cell("ps", CellType.PS, fixed_xy=(10.0, 10.0))
    io = nl.add_cell("pad", CellType.IO, fixed_xy=(700.0, 400.0))
    luts = [nl.add_cell(f"lut{i}", CellType.LUT) for i in range(6)]
    ffs = [nl.add_cell(f"ff{i}", CellType.FF) for i in range(6)]
    lr = nl.add_cell("lram", CellType.LUTRAM)
    br = nl.add_cell("bram", CellType.BRAM)
    dsps = [nl.add_cell(f"dsp{i}", CellType.DSP, is_datapath=(i < 5)) for i in range(6)]

    nl.add_net("ps_out", ps, [luts[0]])
    for i in range(5):
        nl.add_net(f"l{i}", luts[i], [ffs[i]])
        nl.add_net(f"f{i}", ffs[i], [luts[i + 1]])
    nl.add_net("lut5_q", luts[5], [ffs[5]])
    nl.add_net("to_lram", ffs[5], [lr])
    nl.add_net("lram_q", lr, [dsps[0]])
    nl.add_net("c01", dsps[0], [dsps[1]])
    nl.add_net("c12", dsps[1], [dsps[2]])
    nl.add_net("c34", dsps[3], [dsps[4]])
    nl.add_net("tree", dsps[2], [dsps[3]])
    nl.add_net("dsp_out", dsps[4], [br])
    nl.add_net("bram_q", br, [io])
    nl.add_net("ctl", dsps[5], [ffs[0], ffs[1]])
    nl.add_net("ctl_in", ffs[2], [dsps[5]])
    nl.add_macro([dsps[0], dsps[1], dsps[2]])
    nl.add_macro([dsps[3], dsps[4]])
    nl.validate()
    return nl


@pytest.fixture(scope="session")
def mini_accel(small_dev):
    """A generated mini accelerator that fits the small device."""
    return generate_suite("ismartdnn", scale=0.02, device=small_dev)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
