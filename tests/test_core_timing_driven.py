"""Timing-driven DSPlacer extension (slack-weighted assignment)."""

import numpy as np
import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import build_dsp_graph
from repro.core.placement import AssignmentConfig, DatapathDSPAssigner
from repro.netlist import CellType, Netlist
from repro.placers import Placement


class TestSetCriticality:
    @pytest.fixture()
    def assigner(self, small_dev):
        nl = Netlist("td")
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(10.0, 10.0))
        crit_ff = nl.add_cell("crit_ff", CellType.FF)
        slow_ff = nl.add_cell("slow_ff", CellType.FF)
        d = nl.add_cell("d", CellType.DSP, is_datapath=True)
        nl.add_net("seed", anchor, [crit_ff, slow_ff])
        nl.add_net("a", crit_ff, [d])
        nl.add_net("b", slow_ff, [d])
        graph = build_dsp_graph(nl, paths=[])
        a = DatapathDSPAssigner(nl, small_dev, graph, [d], AssignmentConfig(lam=0.0, eta=0.0))
        return nl, a, crit_ff, slow_ff, d

    def test_criticality_scales_weights(self, assigner):
        nl, a, crit_ff, slow_ff, d = assigner
        slack = np.full(len(nl.cells), 10.0)
        slack[crit_ff] = -1.0  # failing path through crit_ff
        a.set_criticality(slack, period_ns=5.0, boost=3.0)
        idx, val = a._neighbors[0]
        base_idx, base_val = a._base_neighbors[0]
        by_cell = dict(zip(idx, val))
        base_by_cell = dict(zip(base_idx, base_val))
        assert by_cell[crit_ff] > base_by_cell[crit_ff] * 2.5
        assert by_cell[slow_ff] == pytest.approx(base_by_cell[slow_ff])

    def test_nan_slack_neutral(self, assigner):
        nl, a, crit_ff, slow_ff, d = assigner
        slack = np.full(len(nl.cells), np.nan)
        a.set_criticality(slack, period_ns=5.0)
        idx, val = a._neighbors[0]
        base_idx, base_val = a._base_neighbors[0]
        assert np.allclose(val, base_val)

    def test_clear_restores(self, assigner):
        nl, a, crit_ff, slow_ff, d = assigner
        slack = np.full(len(nl.cells), -2.0)
        a.set_criticality(slack, period_ns=5.0)
        a.clear_criticality()
        idx, val = a._neighbors[0]
        base_idx, base_val = a._base_neighbors[0]
        assert np.allclose(val, base_val)

    def test_pull_toward_critical_neighbor(self, assigner, small_dev):
        nl, a, crit_ff, slow_ff, d = assigner
        p = Placement(nl, small_dev)
        p.xy[crit_ff] = (small_dev.width - 10.0, small_dev.height - 10.0)
        p.xy[slow_ff] = (10.0, 10.0)
        # without criticality: equidistant pull → site near the middle-ish;
        # with crit_ff failing: site should move toward crit_ff's corner
        r0, _ = a.solve(p.copy())
        slack = np.full(len(nl.cells), 10.0)
        slack[crit_ff] = -3.0
        a.set_criticality(slack, period_ns=5.0, boost=10.0)
        r1, _ = a.solve(p.copy())
        xy = small_dev.site_xy("DSP")
        d0 = np.abs(xy[r0[3]] - p.xy[crit_ff]).sum()
        d1 = np.abs(xy[r1[3]] - p.xy[crit_ff]).sum()
        assert d1 <= d0


class TestTdCriticalityWeights:
    """The one-gather reweighting helper vs the per-net loop it replaced."""

    def test_matches_per_net_loop_oracle(self):
        from repro.placers.vivado_like import td_criticality_weights

        rng = np.random.default_rng(3)
        n_cells, n_nets = 40, 25
        slack = rng.uniform(-3.0, 8.0, n_cells)
        slack[rng.integers(0, n_cells, 6)] = np.nan
        driver = rng.integers(0, n_cells, n_nets)
        base = rng.uniform(0.5, 2.0, n_nets)
        current = rng.uniform(0.5, 4.0, n_nets)
        period, boost = 5.0, 2.0
        got = td_criticality_weights(slack, driver, base, current, period, boost)
        for k in range(n_nets):
            s = slack[driver[k]]
            if np.isnan(s):
                # the loop `continue`d, preserving earlier-round boosts —
                # the net keeps its *current* weight, not its base weight
                assert got[k] == current[k]
            else:
                crit = min(max(1.0 - s / period, 0.0), 1.0)
                assert got[k] == pytest.approx(base[k] * (1.0 + boost * crit))

    def test_all_nan_slack_is_identity(self):
        from repro.placers.vivado_like import td_criticality_weights

        current = np.array([1.5, 2.5, 0.5])
        got = td_criticality_weights(
            np.full(4, np.nan),
            np.array([0, 2, 3]),
            np.ones(3),
            current,
            5.0,
            2.0,
        )
        np.testing.assert_array_equal(got, current)


class TestTimingDrivenFlow:
    def test_flow_runs_and_is_legal(self, mini_accel, small_dev):
        placer = DSPlacer(
            small_dev,
            DSPlacerConfig(identification="oracle", mcf_iterations=3, timing_driven=True),
        )
        res = placer.place(mini_accel)
        assert res.placement.is_legal()
