"""Full-scale (Table I-sized) flow — opt-in, minutes of runtime.

Run with ``REPRO_FULL=1 pytest tests/test_full_scale.py``. The default
suite skips these so `pytest tests/` stays fast; the reduced-scale
equivalents in test_integration.py cover the same code paths.
"""

import os

import pytest

from repro.accelgen import generate_suite
from repro.core import DSPlacer, DSPlacerConfig
from repro.fpga import zcu104
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_FULL") != "1",
    reason="full-scale run (minutes); set REPRO_FULL=1 to enable",
)


def test_full_scale_ismartdnn_flow():
    device = zcu104()
    netlist = generate_suite("ismartdnn", scale=1.0, device=device)
    st = netlist.stats(device.n_dsp)
    assert st.n_dsp == 197 and st.n_lut == 53503

    baseline = VivadoLikePlacer(seed=0, device=device).place(netlist)
    assert baseline.is_legal()

    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()
    f_base = max_frequency(sta, baseline, router.route(baseline))

    result = DSPlacer(
        device, DSPlacerConfig(identification="heuristic", seed=0)
    ).place(netlist, initial_placement=baseline)
    assert result.placement.is_legal()
    f_dsp = max_frequency(sta, result.placement, router.route(result.placement))
    assert f_dsp >= f_base * 0.97
