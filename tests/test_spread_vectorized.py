"""Grouped-vs-loop spreading equivalence + slab-boundary regression.

``_spread`` historically selected slab members with ``>= edge[s] & <
edge[s+1]`` scans, so a cell sitting at (or, via the ``_equalize``
monotonicity epsilon, just above) the last slab edge matched no slab and
its y coordinate was never equalized. Both methods now share clipped
``np.digitize`` membership; the vectorized grouped equalization must match
the per-slab loop oracle to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import small_device
from repro.placers import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.analytical import _equalize, _equalize_grouped, _slab_of

DEV = small_device(n_dsp_cols=3, dsp_rows=12)


@st.composite
def spread_case(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n = draw(st.integers(0, 300))
    # include out-of-fabric positions: the solver can overshoot before clipping
    pos = np.column_stack(
        [
            rng.uniform(-10.0, DEV.width + 10.0, n),
            rng.uniform(-10.0, DEV.height + 10.0, n),
        ]
    )
    areas = rng.uniform(0.5, 12.0, n)
    n_slabs = draw(st.integers(1, 6))
    n_bins = draw(st.integers(2, 40))
    return pos, areas, n_slabs, n_bins


class TestVectorizedEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(spread_case())
    def test_spread_matches_reference(self, case):
        pos, areas, n_slabs, n_bins = case
        a = QuadraticGlobalPlacer(
            GlobalPlaceConfig(n_slabs=n_slabs, n_bins=n_bins, spread_method="vectorized")
        )._spread(pos, areas, DEV)
        b = QuadraticGlobalPlacer(
            GlobalPlaceConfig(n_slabs=n_slabs, n_bins=n_bins, spread_method="reference")
        )._spread(pos, areas, DEV)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(spread_case())
    def test_grouped_equalize_matches_per_group(self, case):
        pos, areas, n_slabs, n_bins = case
        y = pos[:, 1]
        group = _slab_of(pos[:, 0], DEV.width, n_slabs)
        got = _equalize_grouped(y, areas, group, n_slabs, 0.0, DEV.height, n_bins)
        expect = y.copy()
        for g in range(n_slabs):
            sel = group == g
            if sel.sum() > 2:
                expect[sel] = _equalize(y[sel], areas[sel], 0.0, DEV.height, n_bins)
        np.testing.assert_allclose(got, expect, rtol=0, atol=1e-9)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="spread_method"):
            QuadraticGlobalPlacer(GlobalPlaceConfig(spread_method="banana"))


class TestSlabBoundaryRegression:
    def test_every_x_gets_a_slab(self):
        w = DEV.width
        x = np.array([-1.0, 0.0, w / 2, w - 1e-9, w, w + 1e-6])
        s = _slab_of(x, w, 4)
        assert s.min() >= 0 and s.max() <= 3
        # the old >=/< scan left x >= w unmatched; digitize maps it last
        assert s[-2] == 3 and s[-1] == 3

    @pytest.mark.parametrize("method", ["vectorized", "reference"])
    def test_max_x_cell_is_equalized(self, method):
        """The x-equalization epsilon pushes the max-x cell just past the
        fabric edge; its y must still be spread with its slab."""
        n = 50
        rng = np.random.default_rng(3)
        pos = np.column_stack(
            [np.linspace(0.0, DEV.width, n), np.full(n, DEV.height / 2)]
        )
        areas = rng.uniform(1.0, 4.0, n)
        placer = QuadraticGlobalPlacer(
            GlobalPlaceConfig(n_slabs=4, n_bins=32, spread_method=method, avoid_ps=False)
        )
        out = placer._spread(pos, areas, DEV)
        top = int(np.argmax(out[:, 0]))
        assert out[top, 0] >= DEV.width - 1.5  # still the edge cell
        # all cells started at y = h/2; equalization moves the slab's
        # marginal, so the boundary cell's y may no longer sit there
        assert out[top, 1] != pytest.approx(DEV.height / 2, abs=1e-12)
