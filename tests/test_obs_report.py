"""RunReport schema: validation, round-trip, and the full observed flow."""

import json

import pytest

from repro import obs
from repro.core import DSPlacer
from repro.errors import ReportSchemaError
from repro.obs import (
    REPORT_KIND,
    SCHEMA_VERSION,
    RunReport,
    aggregate_spans,
    render_trace,
    validate_report,
)
from repro.obs.report import _main as validate_cli


def _sample_doc() -> dict:
    return {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "meta": {"tool": "dsplacer"},
        "spans": [
            {
                "name": "place",
                "wall_s": 1.5,
                "cpu_s": 1.0,
                "attrs": {"ok": True},
                "counters": {"n": 2},
                "children": [
                    {"name": "place.extraction", "wall_s": 0.5, "cpu_s": 0.4, "children": []}
                ],
            }
        ],
        "metrics": {
            "counters": {"mcf.solves": 3},
            "gauges": {"placement.hpwl_um": 100.0},
            "histograms": {
                "assignment.objective": {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}
            },
        },
        "health": {"degraded": False, "events": []},
        "quality": {"legal": True},
    }


def _job_section() -> dict:
    return {
        "id": "job-0001",
        "submitted_unix": 100.0,
        "started_unix": 100.5,
        "finished_unix": 103.0,
        "cache": "miss",
        "race": {
            "k": 2,
            "policy": "best",
            "winner_seed": 1,
            "attempts": [
                {"seed": 0, "status": "ok", "hpwl_um": 10.0},
                {"seed": 1, "status": "ok", "hpwl_um": 9.0},
            ],
            "cancelled": 0,
        },
    }


def _clock_section() -> dict:
    return {
        "model": "htree",
        "htree": {"depth": 2, "n_taps": 16, "total_wire_um": 4000.0},
        "n_sinks": 128,
        "worst_skew_ns": 0.093,
        "mean_abs_skew_ns": 0.041,
    }


class TestValidation:
    def test_valid_document(self):
        assert validate_report(_sample_doc()) == []

    def test_not_a_dict(self):
        assert validate_report([1, 2]) != []

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(kind="wrong.kind"),
            lambda d: d.update(schema_version="1"),
            lambda d: d.update(schema_version=SCHEMA_VERSION + 1),
            lambda d: d["spans"][0].pop("name"),
            lambda d: d["spans"][0].update(wall_s=-1.0),
            lambda d: d["spans"][0].update(counters={"n": "two"}),
            lambda d: d["metrics"].update(gauges={"g": "high"}),
            lambda d: d["metrics"]["histograms"].update(bad={"count": 1}),
            lambda d: d["health"].update(degraded="no"),
            lambda d: d["health"].update(events=[{"stage": "s"}]),
        ],
    )
    def test_broken_documents_rejected(self, mutate):
        doc = _sample_doc()
        mutate(doc)
        assert validate_report(doc) != []

    def test_from_dict_strict_raises(self):
        doc = _sample_doc()
        doc["kind"] = "nope"
        with pytest.raises(ReportSchemaError):
            RunReport.from_dict(doc)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(job=[]),
            lambda d: d["job"].pop("id"),
            lambda d: d["job"].update(id=""),
            lambda d: d["job"].update(cache="warm"),
            lambda d: d["job"].update(submitted_unix="now"),
            lambda d: d["job"].update(race={"k": 0, "policy": "best"}),
            lambda d: d["job"].update(race={"k": 2, "policy": "best", "cancelled": -1}),
            lambda d: d["job"].update(
                race={"k": 2, "policy": "best", "attempts": [{"seed": 1}]}
            ),
        ],
    )
    def test_broken_job_sections_rejected(self, mutate):
        doc = _sample_doc()
        doc["job"] = _job_section()
        mutate(doc)
        assert validate_report(doc) != []

    def test_valid_job_section(self):
        doc = _sample_doc()
        doc["job"] = _job_section()
        assert validate_report(doc) == []

    def test_job_section_requires_v2(self):
        doc = _sample_doc()
        doc["schema_version"] = 1
        doc["job"] = _job_section()
        problems = validate_report(doc)
        assert any("schema_version >= 2" in p for p in problems)

    def test_valid_clock_section(self):
        doc = _sample_doc()
        doc["clock"] = _clock_section()
        assert validate_report(doc) == []

    def test_clock_section_requires_v3(self):
        doc = _sample_doc()
        doc["schema_version"] = 2
        doc["clock"] = _clock_section()
        problems = validate_report(doc)
        assert any("schema_version >= 3" in p for p in problems)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(clock=[]),
            lambda d: d["clock"].pop("model"),
            lambda d: d["clock"].update(model=""),
            lambda d: d["clock"].update(n_sinks=-1),
            lambda d: d["clock"].update(n_sinks=2.5),
            lambda d: d["clock"].update(worst_skew_ns="big"),
            lambda d: d["clock"].update(mean_abs_skew_ns=True),
            lambda d: d["clock"].update(htree="deep"),
        ],
    )
    def test_broken_clock_sections_rejected(self, mutate):
        doc = _sample_doc()
        doc["clock"] = _clock_section()
        mutate(doc)
        assert validate_report(doc) != []

    def test_clock_section_config_only_is_valid(self):
        doc = _sample_doc()
        doc["clock"] = {"model": "region", "skew_per_region_ns": 0.03}
        assert validate_report(doc) == []

    def test_v1_documents_stay_valid(self):
        doc = _sample_doc()
        doc["schema_version"] = 1
        assert validate_report(doc) == []

    def test_cli_validator(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_sample_doc()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "nope"}))
        assert validate_cli([str(good)]) == 0
        assert validate_cli([str(good), str(bad)]) == 1


class TestRoundTrip:
    def test_to_dict_from_dict(self):
        rep = RunReport.from_dict(_sample_doc())
        again = RunReport.from_dict(rep.to_dict())
        assert again.to_dict() == rep.to_dict()
        assert again.span_names() == {"place", "place.extraction"}
        assert "mcf.solves" in again.metric_names()

    def test_job_section_round_trips(self):
        doc = _sample_doc()
        doc["job"] = _job_section()
        rep = RunReport.from_dict(doc)
        assert rep.job["id"] == "job-0001"
        assert rep.to_dict()["job"]["race"]["winner_seed"] == 1
        # a job-less report omits the key entirely
        assert "job" not in RunReport.from_dict(_sample_doc()).to_dict()

    def test_clock_section_round_trips(self):
        doc = _sample_doc()
        doc["clock"] = _clock_section()
        rep = RunReport.from_dict(doc)
        assert rep.clock["model"] == "htree"
        assert rep.to_dict()["clock"]["htree"]["depth"] == 2
        # a clock-less report omits the key entirely
        assert "clock" not in RunReport.from_dict(_sample_doc()).to_dict()

    def test_stage_seconds_and_aggregate(self):
        rep = RunReport.from_dict(_sample_doc())
        agg = aggregate_spans(rep.spans)
        assert agg["place"]["count"] == 1
        assert rep.stage_seconds()["place.extraction"] == pytest.approx(0.5)

    def test_render_trace_mentions_every_span(self):
        rep = RunReport.from_dict(_sample_doc())
        text = render_trace(rep.spans)
        assert "place" in text and "place.extraction" in text


class TestObservedFlow:
    """End-to-end: the full DSPlacer flow emits a schema-valid report."""

    def test_dsplacer_run_report(self, small_dev, mini_accel):
        with obs.observe() as ob:
            result = DSPlacer(small_dev).place(mini_accel)
        rep = result.report
        assert rep is not None
        names = rep.span_names()
        # every flow stage is covered, down to per-iteration spans
        for required in (
            "place",
            "place.prototype",
            "place.extraction",
            "extraction.identify",
            "extraction.iddfs",
            "place.outer",
            "place.assignment",
            "assignment.iterate",
            "place.legalization",
            "place.incremental",
        ):
            assert required in names, required
        assert len(rep.metric_names()) >= 10
        assert validate_report(rep.to_dict()) == []
        assert rep.quality["legal"] is True
        # the report survives a JSON round-trip
        again = RunReport.from_dict(json.loads(rep.to_json()))
        assert again.span_names() == names

    def test_skewed_run_attaches_clock_section(self, mini_accel):
        from repro.core import DSPlacerConfig
        from repro.fpga import slot_fabric

        dev = slot_fabric(0.05)
        cfg = DSPlacerConfig(skew_model="htree", outer_iterations=1)
        with obs.observe() as ob:
            result = DSPlacer(dev, cfg).place(mini_accel)
        rep = result.report
        assert rep is not None and rep.clock is not None
        assert rep.clock["model"] == "htree"
        assert rep.clock["n_sinks"] > 0
        assert validate_report(rep.to_dict()) == []
        # the default configuration keeps reports clock-less
        with obs.observe() as ob:
            plain = DSPlacer(dev).place(mini_accel)
        assert plain.report.clock is None

    def test_unobserved_result_synthesizes_report(self, small_dev, mini_accel):
        result = DSPlacer(small_dev).place(mini_accel)
        assert result.report is None
        doc = result.to_dict(meta={"tool": "dsplacer"})
        assert validate_report(doc) == []
        assert doc["meta"]["tool"] == "dsplacer"
        names = {s["name"] for s in RunReport.from_dict(doc).iter_spans()}
        assert "place.prototype_placement" in names
        assert doc["quality"]["legal"] is True
