"""Unit tests for device builders."""

import pytest

from repro.fpga import build_device, scaled_zcu104, small_device, zcu104


class TestZCU104:
    @pytest.fixture(scope="class")
    def dev(self):
        return zcu104()

    def test_dsp_count_order_of_magnitude(self, dev):
        # 1728-site grid minus the PS-corner clipping
        assert 1600 <= dev.n_dsp <= 1728

    def test_dsp_columns(self, dev):
        assert dev.n_dsp_columns == 12

    def test_clb_capacity_fits_largest_benchmark(self, dev):
        # SkrSkr-2: ~70k LUT + 64k FF + CARRY/LUTRAM
        assert dev.n_sites("CLB") * dev.clb_capacity > 150_000

    def test_ps_bottom_left(self, dev):
        assert dev.ps.x0 == 0.0 and dev.ps.y0 == 0.0
        assert dev.ps.x1 < dev.width / 2

    def test_dsp_row_pitch(self, dev):
        col = dev.kind_columns("DSP")[-1]  # away from the PS clipping
        diffs = col.ys[1:] - col.ys[:-1]
        assert diffs.min() == pytest.approx(diffs.max())


class TestScaled:
    def test_scale_one_is_zcu104(self):
        assert scaled_zcu104(1.0).name == "zcu104"

    def test_quarter_scale_capacity(self):
        dev = scaled_zcu104(0.25)
        assert 300 <= dev.n_dsp <= 600

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_zcu104(0.0)
        with pytest.raises(ValueError):
            scaled_zcu104(1.5)

    def test_aspect_preserved_roughly(self):
        full, quarter = zcu104(), scaled_zcu104(0.25)
        assert quarter.width / quarter.height == pytest.approx(
            full.width / full.height, rel=0.35
        )


class TestSmallDevice:
    def test_configurable_dsp_grid(self):
        dev = small_device(n_dsp_cols=2, dsp_rows=10, with_ps=False)
        assert dev.n_dsp == 20
        assert dev.n_dsp_columns == 2

    def test_validates(self):
        small_device().validate()


class TestBuildDevice:
    def test_all_kinds_present(self):
        dev = build_device("t", n_clb_cols=6, n_dsp_cols=2, n_bram_cols=1, n_clb_rows=40)
        assert dev.n_sites("CLB") > 0
        assert dev.n_sites("DSP") > 0
        assert dev.n_sites("BRAM") > 0

    def test_width_matches_columns(self):
        dev = build_device("t", n_clb_cols=6, n_dsp_cols=2, n_bram_cols=1, n_clb_rows=40)
        assert dev.width == pytest.approx((6 + 2 + 1) * 60.0)
