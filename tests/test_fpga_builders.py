"""Unit tests for device builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga import (
    FABRIC_NAMES,
    build_device,
    fabric_device,
    scaled_zcu104,
    slot_fabric,
    small_device,
    zcu104,
)


class TestZCU104:
    @pytest.fixture(scope="class")
    def dev(self):
        return zcu104()

    def test_dsp_count_order_of_magnitude(self, dev):
        # 1728-site grid minus the PS-corner clipping
        assert 1600 <= dev.n_dsp <= 1728

    def test_dsp_columns(self, dev):
        assert dev.n_dsp_columns == 12

    def test_clb_capacity_fits_largest_benchmark(self, dev):
        # SkrSkr-2: ~70k LUT + 64k FF + CARRY/LUTRAM
        assert dev.n_sites("CLB") * dev.clb_capacity > 150_000

    def test_ps_bottom_left(self, dev):
        assert dev.ps.x0 == 0.0 and dev.ps.y0 == 0.0
        assert dev.ps.x1 < dev.width / 2

    def test_dsp_row_pitch(self, dev):
        col = dev.kind_columns("DSP")[-1]  # away from the PS clipping
        diffs = col.ys[1:] - col.ys[:-1]
        assert diffs.min() == pytest.approx(diffs.max())


class TestScaled:
    def test_scale_one_is_zcu104(self):
        assert scaled_zcu104(1.0).name == "zcu104"

    def test_quarter_scale_capacity(self):
        dev = scaled_zcu104(0.25)
        assert 300 <= dev.n_dsp <= 600

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_zcu104(0.0)
        with pytest.raises(ValueError):
            scaled_zcu104(1.5)

    def test_aspect_preserved_roughly(self):
        full, quarter = zcu104(), scaled_zcu104(0.25)
        assert quarter.width / quarter.height == pytest.approx(
            full.width / full.height, rel=0.35
        )


class TestSmallDevice:
    def test_configurable_dsp_grid(self):
        dev = small_device(n_dsp_cols=2, dsp_rows=10, with_ps=False)
        assert dev.n_dsp == 20
        assert dev.n_dsp_columns == 2

    def test_validates(self):
        small_device().validate()


class TestBuildDevice:
    def test_all_kinds_present(self):
        dev = build_device("t", n_clb_cols=6, n_dsp_cols=2, n_bram_cols=1, n_clb_rows=40)
        assert dev.n_sites("CLB") > 0
        assert dev.n_sites("DSP") > 0
        assert dev.n_sites("BRAM") > 0

    def test_width_matches_columns(self):
        dev = build_device("t", n_clb_cols=6, n_dsp_cols=2, n_bram_cols=1, n_clb_rows=40)
        assert dev.width == pytest.approx((6 + 2 + 1) * 60.0)


class TestSlotFabric:
    @pytest.fixture(scope="class")
    def dev(self):
        return slot_fabric(0.05)

    def test_no_ps_no_cascades(self, dev):
        assert dev.ps is None
        assert dev.has_cascades is False

    def test_uniform_slot_grid(self, dev):
        # every column carries the same row count at the same pitch
        rows = {c.n_sites for c in dev.columns}
        assert len(rows) == 1
        ys = {tuple(np.round(c.ys, 9)) for c in dev.columns}
        assert len(ys) == 1

    def test_all_kinds_present(self, dev):
        assert dev.n_sites("CLB") > 0
        assert dev.n_sites("DSP") > 0
        assert dev.n_sites("BRAM") > 0

    def test_clock_tree_attached_and_square_regions(self, dev):
        ncx, ncy = dev.clock_region_shape
        assert ncx == ncy and ncx in (4, 8)
        assert dev.clock_tree is not None
        assert dev.clock_tree.n_taps == ncx * ncy

    def test_validates_at_scales(self):
        for scale in (0.05, 0.25, 1.0):
            slot_fabric(scale).validate()

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            slot_fabric(0.0)
        with pytest.raises(ValueError, match="scale"):
            slot_fabric(1.5)

    def test_deterministic(self):
        a, b = slot_fabric(0.1), slot_fabric(0.1)
        assert a.n_dsp == b.n_dsp
        np.testing.assert_array_equal(a.site_xy("DSP"), b.site_xy("DSP"))
        np.testing.assert_array_equal(a.clock_tree.taps, b.clock_tree.taps)


class TestFabricRegistry:
    def test_names(self):
        assert "zcu104" in FABRIC_NAMES and "slot_fabric" in FABRIC_NAMES

    def test_zcu104_route(self):
        dev = fabric_device("zcu104", 0.05)
        assert dev.name == "zcu104@0.05"
        assert dev.has_cascades is True

    def test_slot_fabric_route(self):
        dev = fabric_device("slot_fabric", 0.05)
        assert dev.name == "slot_fabric@0.05"
        assert dev.has_cascades is False

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="fabric"):
            fabric_device("banana", 0.1)
