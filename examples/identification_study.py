"""Datapath-DSP identification study (paper Section V-B, Fig. 7).

Trains the GCN classifier on four reduced-scale suites and evaluates on the
held-out fifth, next to the PADE-style local-feature SVM and the
storage-association heuristic. Prints a Fig. 7(a)-style table and the
Fig. 7(b) accuracy curve of the held-out fold.

Usage:  python examples/identification_study.py [held_out_suite]
"""

import sys

from repro.accelgen import SUITE_NAMES, generate_suite
from repro.core.extraction import DatapathIdentifier, FeatureConfig, build_graph_sample
from repro.ml.train import train_gcn

SCALE = 0.08
EPOCHS = 120


def main() -> None:
    held_out = sys.argv[1] if len(sys.argv) > 1 else "skynet"
    if held_out not in SUITE_NAMES:
        raise SystemExit(f"choose a suite from {SUITE_NAMES}")

    print(f"preparing graphs at scale {SCALE} (features: centralities + degrees)...")
    samples = {}
    netlists = {}
    for name in SUITE_NAMES:
        nl = generate_suite(name, scale=SCALE)
        netlists[name] = nl
        samples[name] = build_graph_sample(nl, feature_config=FeatureConfig(n_pivots=32))
        n_dsp = int(samples[name].mask.sum())
        frac = samples[name].labels[samples[name].mask].mean()
        print(f"  {nl.name:16s} {len(nl):6d} cells, {n_dsp:4d} DSPs "
              f"({frac:.0%} datapath)")

    train = [samples[n] for n in SUITE_NAMES if n != held_out]
    test_nl = netlists[held_out]
    test_sample = samples[held_out]

    print(f"\ntraining GCN on {len(train)} suites, testing on {test_nl.name}...")
    gcn_result = train_gcn(train, [test_sample], epochs=EPOCHS, seed=0)
    gcn = DatapathIdentifier(method="gcn")
    gcn._gcn = gcn_result

    svm = DatapathIdentifier(method="svm").fit(train)
    heuristic = DatapathIdentifier(method="heuristic")

    print(f"\n{'method':<22}{'accuracy on ' + test_nl.name:>24}")
    for name, ident in (("GCN (paper)", gcn), ("SVM, local-only (PADE)", svm),
                        ("storage heuristic", heuristic)):
        res = ident.predict(test_nl, sample=test_sample)
        print(f"{name:<22}{res.accuracy:>23.1%}")

    curve = gcn_result.test_curve
    print(f"\ntest-accuracy curve (Fig. 7(b) style): "
          f"epoch 1: {curve[0]:.2f} → epoch {len(curve)}: {curve[-1]:.2f}")
    steps = max(1, len(curve) // 10)
    print("  " + " ".join(f"{a:.2f}" for a in curve[::steps]))


if __name__ == "__main__":
    main()
