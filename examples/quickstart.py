"""Quickstart: place a small CNN accelerator with DSPlacer and compare.

Runs in under a minute on a laptop:

1. build a small UltraScale+-style device,
2. generate a reduced-scale iSmartDNN-like accelerator netlist,
3. place it with the Vivado-like baseline and with DSPlacer,
4. route, run STA, and print the comparison.

Usage:  python examples/quickstart.py
"""

from repro.accelgen import generate_suite
from repro.core import DSPlacer, DSPlacerConfig
from repro.fpga import scaled_zcu104
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency


def main() -> None:
    device = scaled_zcu104(0.12)
    netlist = generate_suite("skrskr1", scale=0.12, device=device)
    print(f"device : {device}")
    print(f"design : {netlist.stats(device.n_dsp)}")

    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)

    # --- baseline ----------------------------------------------------
    baseline = VivadoLikePlacer(seed=0, device=device).place(netlist)
    base_route = router.route(baseline)
    base_fmax = max_frequency(sta, baseline, base_route)

    # --- DSPlacer ----------------------------------------------------
    placer = DSPlacer(device, DSPlacerConfig(identification="heuristic", seed=0))
    result = placer.place(netlist)
    dsp_route = router.route(result.placement)
    dsp_fmax = max_frequency(sta, result.placement, dsp_route)

    print(f"\nidentification: {result.identification.method}, "
          f"accuracy vs ground truth = {result.identification.accuracy:.0%}, "
          f"{result.n_datapath_dsps} datapath DSPs")
    print(f"DSP graph: {result.dsp_graph_nodes} nodes / {result.dsp_graph_edges} edges")

    # evaluate both at the baseline's breaking clock (paper V-C protocol)
    eval_freq = base_fmax * 1.03
    period = 1e3 / eval_freq
    wns_base = sta.analyze(baseline, base_route, period_ns=period).wns_ns
    wns_dsp = sta.analyze(result.placement, dsp_route, period_ns=period).wns_ns

    print(f"\nevaluation clock: {eval_freq:.0f} MHz")
    print(f"{'flow':<12}{'WNS (ns)':>10}{'f_max (MHz)':>14}{'HPWL (um)':>14}")
    print(f"{'vivado-like':<12}{wns_base:>+10.3f}{base_fmax:>14.0f}{baseline.hpwl():>14.0f}")
    print(f"{'dsplacer':<12}{wns_dsp:>+10.3f}{dsp_fmax:>14.0f}{result.placement.hpwl():>14.0f}")
    assert result.placement.is_legal()
    print("\nplacement is legal; done.")


if __name__ == "__main__":
    main()
