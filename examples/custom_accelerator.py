"""Placing a *custom* CNN accelerator architecture.

The paper's pitch is that DSPlacer supports "diverse CNN accelerator
architectures" — not just the five DAC-SDC suites. This example defines a
custom accelerator (deep 12-DSP cascades, wide PUs, heavier control), runs
the full flow, and prints layout-order metrics plus an SVG you can open in
a browser.

Usage:  python examples/custom_accelerator.py [out.svg]
"""

import sys

from repro.accelgen import AcceleratorConfig, generate_accelerator
from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.eval.visualization import layout_metrics, placement_to_svg
from repro.fpga import scaled_zcu104
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency


def main() -> None:
    out_svg = sys.argv[1] if len(sys.argv) > 1 else "custom_accelerator.svg"

    config = AcceleratorConfig(
        name="CustomNet",
        total_dsps=160,
        chain_len=12,          # deep cascades: stresses intra-column legality
        pes_per_pu=4,
        n_lut=9000,
        n_lutram=500,
        n_ff=10000,
        n_bram=24,
        freq_mhz=160.0,
        control_dsp_frac=0.08,  # heavier control path than the suites
        seed=42,
    )
    device = scaled_zcu104(0.12)
    netlist = generate_accelerator(config, device=device)
    print(f"generated {netlist.stats(device.n_dsp)}")

    placer = DSPlacer(device, DSPlacerConfig(identification="heuristic", seed=0))
    result = placer.place(netlist)
    print(f"datapath DSPs: {result.n_datapath_dsps} "
          f"(identification accuracy {result.identification.accuracy:.0%})")

    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)
    route = router.route(result.placement)
    fmax = max_frequency(sta, result.placement, route)
    print(f"f_max = {fmax:.0f} MHz  "
          f"(target {config.freq_mhz} MHz: {'met' if fmax >= config.freq_mhz else 'missed'})")
    print(f"routed wirelength = {route.total_wirelength:.3g} um, "
          f"max congestion = {route.max_congestion:.2f}")

    paths = iddfs_dsp_paths(netlist)
    graph = prune_control_dsps(
        build_dsp_graph(netlist, paths),
        {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
    )
    metrics = layout_metrics(result.placement, graph)
    print(f"cascade pairs on dedicated wiring: {metrics.cascade_adjacent_frac:.0%}")
    print(f"datapath angle monotonicity: {metrics.angle_monotonicity:+.2f}")

    placement_to_svg(result.placement, graph, path=out_svg, title="CustomNet — DSPlacer")
    print(f"layout written to {out_svg}")


if __name__ == "__main__":
    main()
