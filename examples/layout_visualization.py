"""Reproduce Fig. 9 at small scale: three tools, three layouts, three SVGs.

Places SkrSkr-1 with the Vivado-like baseline, the AMF-like baseline and
DSPlacer, writes one annotated SVG per tool, and prints the quantitative
layout-order metrics the figure illustrates.

Usage:  python examples/layout_visualization.py [out_dir]
"""

import pathlib
import sys

from repro.accelgen import generate_suite
from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.eval.visualization import layout_metrics, placement_to_svg
from repro.fpga import scaled_zcu104
from repro.placers import AMFLikePlacer, VivadoLikePlacer

SCALE = 0.12


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "layouts")
    out_dir.mkdir(parents=True, exist_ok=True)

    device = scaled_zcu104(SCALE)
    netlist = generate_suite("skrskr1", scale=SCALE, device=device)
    print(f"{netlist.name}: {netlist.stats(device.n_dsp)}")

    paths = iddfs_dsp_paths(netlist)
    dsp_graph = prune_control_dsps(
        build_dsp_graph(netlist, paths),
        {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
    )

    flows = {
        "vivado": lambda: VivadoLikePlacer(seed=0, device=device).place(netlist),
        "amf": lambda: AMFLikePlacer(seed=0, device=device).place(netlist),
        "dsplacer": lambda: DSPlacer(
            device, DSPlacerConfig(identification="heuristic", seed=0)
        ).place(netlist).placement,
    }

    print(f"\n{'tool':<10}{'cascades adj.':>14}{'mean dp-edge':>14}{'angle order':>13}")
    for name, make in flows.items():
        placement = make()
        m = layout_metrics(placement, dsp_graph)
        svg = out_dir / f"skrskr1_{name}.svg"
        placement_to_svg(placement, dsp_graph, path=svg, title=f"SkrSkr-1 — {name}")
        print(f"{name:<10}{m.cascade_adjacent_frac:>13.0%}"
              f"{m.mean_datapath_edge_um:>13.0f}u{m.angle_monotonicity:>+13.2f}")
    print(f"\nSVGs in {out_dir}/ — open them in a browser (paper Fig. 9).")


if __name__ == "__main__":
    main()
