"""Placing a systolic-array accelerator (diverse-architecture support).

The paper contrasts DSPlacer with R-SAD, which only handles systolic
arrays. This example goes the other way: it generates a weight-stationary
systolic array — the architecture DSPlacer was *not* specialized for — and
shows the same flow (identification → DSP graph → MCF → cascade
legalization) still produces a legal, well-timed layout, with every
partial-sum column segment on dedicated cascade wiring.

Usage:  python examples/systolic_array.py [rows] [cols]
"""

import sys

from repro.accelgen import SystolicConfig, generate_systolic
from repro.core import DSPlacer, DSPlacerConfig
from repro.eval.visualization import layout_metrics
from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.fpga import scaled_zcu104
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, format_timing_report, max_frequency


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    device = scaled_zcu104(0.15)
    config = SystolicConfig(
        name=f"systolic{rows}x{cols}",
        rows=rows,
        cols=cols,
        max_chain=10,
        n_lut=rows * cols * 25,
        n_ff=rows * cols * 40,
        n_lutram=rows * cols,
        n_bram=max(8, rows),
        freq_mhz=250.0,
    )
    netlist = generate_systolic(config, device=device)
    print(f"{netlist.stats(device.n_dsp)}  ({len(netlist.macros)} cascade segments)")

    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()

    base = VivadoLikePlacer(seed=0, device=device).place(netlist)
    f_base = max_frequency(sta, base, router.route(base))

    result = DSPlacer(device, DSPlacerConfig(identification="heuristic", seed=0)).place(netlist)
    route = router.route(result.placement)
    f_dsp = max_frequency(sta, result.placement, route)

    graph = prune_control_dsps(
        build_dsp_graph(netlist, iddfs_dsp_paths(netlist)),
        {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
    )
    m = layout_metrics(result.placement, graph)
    print(f"\n{'flow':<12}{'f_max (MHz)':>12}")
    print(f"{'vivado-like':<12}{f_base:>12.0f}")
    print(f"{'dsplacer':<12}{f_dsp:>12.0f}")
    print(f"\npartial-sum cascades on dedicated wiring: {m.cascade_adjacent_frac:.0%}")
    print(f"identification accuracy on this foreign architecture: "
          f"{result.identification.accuracy:.0%}")
    rep = sta.analyze(result.placement, route)
    print("\n" + format_timing_report(rep, netlist, k_paths=2))


if __name__ == "__main__":
    main()
